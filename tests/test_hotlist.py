"""The combined peel-back + rumor scheme (Section 1.5)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.protocols.hotlist import HotListProtocol
from repro.sim.transport import ConnectionPolicy


def hotlist_cluster(n, seed=0, **kwargs):
    cluster = Cluster(n=n, seed=seed)
    protocol = HotListProtocol(**kwargs)
    cluster.add_protocol(protocol)
    return cluster, protocol


class TestConvergence:
    def test_single_update_reaches_everyone(self):
        cluster, protocol = hotlist_cluster(40)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: cluster.metrics.infected == 40, max_cycles=100)
        assert cluster.converged()

    def test_no_failure_probability(self):
        """Unlike rumor mongering, coverage is total on every seed."""
        for seed in range(5):
            cluster, protocol = hotlist_cluster(60, seed=seed)
            cluster.inject_update(0, "k", "v", track=True)
            cluster.run_until(
                lambda: cluster.metrics.infected == 60, max_cycles=150
            )
            assert cluster.metrics.complete

    def test_many_keys_converge(self):
        cluster, protocol = hotlist_cluster(20)
        for i in range(10):
            cluster.inject_update(i % 20, f"k{i}", i)
        cluster.run_until(cluster.converged, max_cycles=150)
        assert cluster.converged()

    def test_partition_heal(self):
        """The paper's selling point: behaves well when a network
        partitions and rejoins."""
        cluster, protocol = hotlist_cluster(20, seed=3)
        cluster.inject_update(0, "before", "x")
        cluster.run_until(cluster.converged, max_cycles=60)
        # Partition: sites 15..19 go down; updates continue meanwhile.
        for site in range(15, 20):
            cluster.sites[site].up = False
        for i in range(6):
            cluster.inject_update(i, f"during-{i}", i)
        cluster.run_until(
            lambda: cluster.converged(cluster.up_site_ids()), max_cycles=80
        )
        # Heal. The rejoined sites must catch up on everything.
        for site in range(15, 20):
            cluster.sites[site].up = True
        cluster.run_until(cluster.converged, max_cycles=120)
        for i in range(6):
            assert cluster.sites[17].store.get(f"during-{i}") == i


class TestEfficiency:
    def test_agreeing_pair_costs_one_checksum(self):
        cluster, protocol = hotlist_cluster(10)
        cluster.run_cycle()  # all stores empty and equal
        assert protocol.stats.exchanges == 10
        assert protocol.stats.updates_shipped == 0

    def test_recent_divergence_ships_few_updates(self):
        """With a large synced history and one fresh update, exchanges
        ship the fresh update (hot, at the front), not the history."""
        cluster, protocol = hotlist_cluster(10, batch_size=2)
        for i in range(30):
            cluster.inject_update(0, f"base-{i}", i)
        cluster.run_until(cluster.converged, max_cycles=200)
        shipped_before = protocol.stats.updates_shipped
        cluster.inject_update(3, "fresh", "news")
        cluster.run_until(cluster.converged, max_cycles=50)
        shipped = protocol.stats.updates_shipped - shipped_before
        # 9 sites need the update; batching may pull a few cold keys
        # along, but nothing near the 31-key database per exchange.
        assert shipped < 9 * 2 * 4

    def test_useful_updates_moved_to_front(self):
        cluster, protocol = hotlist_cluster(4, seed=2)
        for i in range(8):
            cluster.inject_update(0, f"base-{i}", i)
        cluster.run_until(cluster.converged, max_cycles=60)
        cluster.inject_update(1, "hot", "x")
        assert protocol.order_of(1).front() == "hot"
        cluster.run_cycle()
        # Every site that learned "hot" has it at its list front.
        for site in cluster.site_ids:
            if cluster.sites[site].store.get("hot") == "x":
                assert protocol.order_of(site).position("hot") == 0

    def test_incremental_mode_converges_over_cycles(self):
        cluster, protocol = hotlist_cluster(
            12, batch_size=1, max_batches_per_exchange=2, seed=4
        )
        for i in range(6):
            cluster.inject_update(i, f"k{i}", i)
        cluster.run_until(cluster.converged, max_cycles=300)
        assert cluster.converged()


class TestConfiguration:
    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            HotListProtocol(batch_size=0)

    def test_connection_policy_respected(self):
        cluster, protocol = hotlist_cluster(
            40, policy=ConnectionPolicy(connection_limit=1, hunt_limit=0), seed=5
        )
        cluster.run_cycles(3)
        assert protocol.stats.rejected > 0

    def test_orders_seeded_from_existing_stores(self):
        cluster = Cluster(n=3, seed=0)
        cluster.sites[0].store.update("pre-existing", 1)
        protocol = HotListProtocol()
        cluster.add_protocol(protocol)
        assert "pre-existing" in protocol.order_of(0)

    def test_deletes_propagate_as_hot_certificates(self):
        cluster, protocol = hotlist_cluster(15, seed=6)
        cluster.inject_update(0, "x", "v")
        cluster.run_until(cluster.converged, max_cycles=60)
        cluster.inject_delete(2, "x")
        assert protocol.order_of(2).front() == "x"
        cluster.run_until(cluster.converged, max_cycles=60)
        assert all(v is None for v in cluster.values_of("x").values())
