"""End-to-end integration: full protocol stacks under realistic
conditions — the configurations the paper actually recommends.

Each test assembles several mechanisms (mail + rumors + anti-entropy +
death-certificate management + faults) on a routed topology and checks
the global guarantees: eventual agreement, no lost deletions, no
resurrection, bounded traffic.
"""

import pytest

from repro.cluster.cluster import Cluster
from repro.experiments.workloads import WorkloadConfig, WorkloadDriver
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.backup import AntiEntropyBackup, RecoveryStrategy
from repro.protocols.base import ExchangeMode
from repro.protocols.deathcerts import CertificatePolicy, DeathCertificateManager
from repro.protocols.direct_mail import DirectMailProtocol
from repro.protocols.hotlist import HotListProtocol
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.sim.faults import FaultSchedule, RandomChurn
from repro.topology import builders
from repro.topology.cin import CinParameters, build_cin_like_topology
from repro.topology.distance import SiteDistances
from repro.topology.spatial import SortedListSelector


@pytest.fixture(scope="module")
def small_cin():
    return build_cin_like_topology(
        CinParameters(
            backbone_hubs=4,
            metro_ethernets=(2, 2),
            sites_per_ethernet=(3, 4),
            linear_chains=1,
            linear_chain_length=5,
            europe_ethernets=2,
            europe_sites_per_ethernet=(3, 4),
        )
    )


class TestPaperRecommendedStack:
    """The deployed configuration: mail for timeliness, spatial
    push-pull anti-entropy for certainty, certificates for deletes."""

    def _build(self, cin, seed=0, mail_loss=0.1):
        distances = SiteDistances(cin.topology)
        selector = SortedListSelector(distances, a=2.0)
        cluster = Cluster(topology=cin.topology, seed=seed)
        cluster.add_protocol(DirectMailProtocol(loss_probability=mail_loss))
        cluster.add_protocol(
            AntiEntropyProtocol(
                selector=selector,
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL),
            )
        )
        cluster.add_protocol(
            DeathCertificateManager(CertificatePolicy(tau1=30.0, tau2=500.0))
        )
        return cluster

    def test_workload_converges_despite_mail_loss(self, small_cin):
        cluster = self._build(small_cin, seed=1)
        driver = WorkloadDriver(
            cluster,
            WorkloadConfig(updates_per_cycle=2.0, key_space=30, delete_fraction=0.2),
            seed=1,
        )
        driver.run(cycles=25)
        cluster.run_until(cluster.converged, max_cycles=120)
        assert cluster.converged()
        assert driver.deletes > 0

    def test_deletions_never_resurrect_under_load(self, small_cin):
        cluster = self._build(small_cin, seed=2, mail_loss=0.2)
        sites = cluster.site_ids
        cluster.inject_update(sites[0], "victim", "v1")
        cluster.run_until(cluster.converged, max_cycles=80)
        cluster.inject_delete(sites[3], "victim", retention_count=3)
        # Keep the network busy with unrelated updates while the
        # certificate spreads.
        driver = WorkloadDriver(
            cluster, WorkloadConfig(updates_per_cycle=1.0, key_space=10), seed=2
        )
        driver.run(cycles=20)
        cluster.run_until(cluster.converged, max_cycles=120)
        assert all(
            cluster.sites[s].store.get("victim") is None for s in sites
        )


class TestRumorWithBackupOnCin:
    def test_spatial_rumors_plus_backup_reach_everyone(self, small_cin):
        distances = SiteDistances(small_cin.topology)
        selector = SortedListSelector(distances, a=1.6)
        cluster = Cluster(topology=small_cin.topology, seed=3)
        protocol = AntiEntropyBackup(
            rumor_config=RumorConfig(mode=ExchangeMode.PUSH_PULL, k=2),
            anti_entropy_period=4,
            recovery=RecoveryStrategy.HOT_RUMOR,
            selector=selector,
        )
        cluster.add_protocol(protocol)
        start = small_cin.sites[0]
        cluster.inject_update(start, "k", "v", track=True)
        cluster.run_until(
            lambda: cluster.metrics.infected == cluster.n, max_cycles=200
        )
        assert cluster.metrics.complete


class TestFaultsAgainstFullStack:
    def test_partition_with_deletes_heals_cleanly(self):
        topo = builders.grid(4, 5)
        cluster = Cluster(topology=topo, seed=4)
        schedule = FaultSchedule()
        half = topo.sites[:10]
        other = topo.sites[10:]
        schedule.partition(at_cycle=5, groups=[half, other]).heal(at_cycle=25)
        cluster.add_protocol(schedule)
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
        )
        cluster.add_protocol(
            DeathCertificateManager(CertificatePolicy(tau1=40.0, tau2=500.0))
        )
        cluster.inject_update(half[0], "doomed", "v")
        cluster.run_until(cluster.converged, max_cycles=30)
        cluster.run_cycles(5)  # partition is now up
        # Delete on one side, update on the other, during the partition.
        cluster.inject_delete(half[0], "doomed", retention_count=2)
        cluster.inject_update(other[0], "fresh", "f")
        cluster.run_cycles(10)
        assert cluster.sites[other[0]].store.get("doomed") == "v"  # uncut yet
        cluster.run_until(cluster.converged, max_cycles=100)
        values = cluster.values_of("doomed")
        assert all(v is None for v in values.values())
        assert all(v == "f" for v in cluster.values_of("fresh").values())

    def test_hotlist_stack_survives_churn(self):
        cluster = Cluster(n=40, seed=5)
        churn = RandomChurn(crash_rate=0.04, recovery_rate=0.3)
        cluster.add_protocol(churn)
        cluster.add_protocol(HotListProtocol(batch_size=4))
        driver = WorkloadDriver(
            cluster, WorkloadConfig(updates_per_cycle=1.5, key_space=20), seed=5
        )
        driver.run(cycles=40)
        churn.restore_all()
        churn.crash_rate = 0.0
        cluster.run_until(cluster.converged, max_cycles=200)
        assert cluster.converged()

    def test_determinism_of_a_composite_stack(self):
        def run(seed):
            cluster = Cluster(n=30, seed=seed)
            cluster.add_protocol(RandomChurn(crash_rate=0.05, recovery_rate=0.4))
            cluster.add_protocol(DirectMailProtocol(loss_probability=0.1))
            cluster.add_protocol(
                RumorMongeringProtocol(RumorConfig(mode=ExchangeMode.PUSH, k=3))
            )
            cluster.add_protocol(
                AntiEntropyProtocol(
                    config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, period=3)
                )
            )
            driver = WorkloadDriver(
                cluster, WorkloadConfig(updates_per_cycle=1.0, key_space=8), seed=seed
            )
            driver.run(cycles=25)
            return {
                s: sorted(
                    (k, str(v)) for k, v in cluster.sites[s].store.visible_items()
                )
                for s in cluster.site_ids
            }

        assert run(42) == run(42)
        assert run(42) != run(43)


class TestMixedProtocolInterplay:
    def test_mail_news_becomes_hot_rumor(self):
        """Protocol composition through on_news: a mail delivery turns
        into a hot rumor at the recipient."""
        cluster = Cluster(n=30, seed=6)
        mail = DirectMailProtocol(loss_probability=0.8)  # most mail lost
        rumor = RumorMongeringProtocol(RumorConfig(mode=ExchangeMode.PUSH, k=3))
        cluster.add_protocol(mail)
        cluster.add_protocol(rumor)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycle()
        # Whoever got mail is now infective too.
        recipients = [s for s in cluster.metrics.receipt_times if s != 0]
        assert all(rumor.is_infective(s, "k") for s in recipients)
        cluster.run_until(lambda: not rumor.active, max_cycles=100)
        # Mail at 80% loss alone reaches ~20%; rumors amplify well past it.
        assert cluster.metrics.infected > 0.8 * cluster.n

    def test_two_independent_anti_entropy_instances(self):
        """Two anti-entropy protocols at different periods coexist
        (e.g. frequent local + nightly global)."""
        cluster = Cluster(n=20, seed=7)
        cluster.add_protocol(
            AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, period=1)
            )
        )
        cluster.add_protocol(
            AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, period=5)
            )
        )
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: cluster.metrics.infected == 20, max_cycles=40)
        assert cluster.metrics.complete
