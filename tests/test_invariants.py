"""The invariant checker, and whole-protocol property tests that use it
to fuzz the stack: random configurations must keep every structural
invariant and converge."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.invariants import InvariantChecker, InvariantViolation
from repro.experiments.workloads import WorkloadConfig, WorkloadDriver
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.deathcerts import CertificatePolicy, DeathCertificateManager
from repro.protocols.direct_mail import DirectMailProtocol
from repro.protocols.hotlist import HotListProtocol
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.sim.faults import RandomChurn


class TestChecker:
    def test_clean_cluster_passes(self):
        cluster = Cluster(n=10, seed=0)
        checker = InvariantChecker()
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
        )
        cluster.add_protocol(checker)
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(10)
        assert checker.checks_run == 10

    def test_check_every(self):
        cluster = Cluster(n=5, seed=0)
        checker = InvariantChecker(check_every=3)
        cluster.add_protocol(checker)
        cluster.run_cycles(9)
        assert checker.checks_run == 3

    def test_check_every_validated(self):
        with pytest.raises(ValueError):
            InvariantChecker(check_every=0)

    def test_detects_corrupted_checksum(self):
        cluster = Cluster(n=3, seed=0)
        checker = InvariantChecker()
        cluster.add_protocol(checker)
        cluster.inject_update(0, "k", "v")
        # Corrupt the root checksum behind the store's back.
        cluster.sites[0].store.checksum_tree._nodes[1] ^= 1
        with pytest.raises(InvariantViolation, match="checksum"):
            cluster.run_cycle()

    def test_detects_corrupted_bucket_leaf(self):
        cluster = Cluster(n=3, seed=0)
        checker = InvariantChecker()
        cluster.add_protocol(checker)
        cluster.inject_update(0, "k", "v")
        store = cluster.sites[0].store
        tree = store.checksum_tree
        # Flip one occupied leaf without propagating to its ancestors:
        # the root (the whole-store checksum) still looks right, so only
        # the per-bucket check can catch this.
        bucket = store.bucket_of("k")
        tree._nodes[tree.buckets + bucket] ^= 1
        with pytest.raises(InvariantViolation, match="leaf"):
            cluster.run_cycle()

    def test_detects_internal_node_drift(self):
        cluster = Cluster(n=3, seed=0)
        checker = InvariantChecker()
        cluster.add_protocol(checker)
        cluster.inject_update(0, "k", "v")
        tree = cluster.sites[0].store.checksum_tree
        # An internal node that is not the XOR of its children would let
        # a drill-down prune a differing subtree.
        tree._nodes[tree.buckets // 2] ^= 1
        with pytest.raises(InvariantViolation, match="XOR|checksum"):
            cluster.run_cycle()

    def test_detects_backwards_timestamp(self):
        cluster = Cluster(n=3, seed=0)
        checker = InvariantChecker()
        cluster.add_protocol(checker)
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()
        # Force an older entry in, bypassing LWW.
        from repro.core.items import VersionedValue
        from repro.core.timestamps import Timestamp

        store = cluster.sites[0].store
        store._put("k", VersionedValue("zombie", Timestamp(-5.0, 0, 0)))
        with pytest.raises(InvariantViolation, match="backwards"):
            cluster.run_cycle()

    def test_detects_ungrounded_rumor(self):
        cluster = Cluster(n=3, seed=0)
        rumor = RumorMongeringProtocol(RumorConfig(k=2))
        checker = InvariantChecker()
        cluster.add_protocol(rumor)
        cluster.add_protocol(checker)
        from repro.core.items import VersionedValue
        from repro.core.store import StoreUpdate
        from repro.core.timestamps import Timestamp

        # A hot rumor for an entry the store never held.
        rumor.make_hot(
            1,
            StoreUpdate(key="phantom", entry=VersionedValue("x", Timestamp(5.0, 1, 0))),
        )
        with pytest.raises(InvariantViolation, match="hot rumor"):
            cluster.run_cycle()


PROTOCOL_CHOICES = st.sampled_from(
    ["mail", "rumor-push", "rumor-pull", "rumor-pushpull", "anti-entropy", "hotlist"]
)


def build_protocol(name, k):
    if name == "mail":
        return DirectMailProtocol(loss_probability=0.1)
    if name == "rumor-push":
        return RumorMongeringProtocol(RumorConfig(mode=ExchangeMode.PUSH, k=k))
    if name == "rumor-pull":
        return RumorMongeringProtocol(RumorConfig(mode=ExchangeMode.PULL, k=k))
    if name == "rumor-pushpull":
        return RumorMongeringProtocol(RumorConfig(mode=ExchangeMode.PUSH_PULL, k=k))
    if name == "anti-entropy":
        return AntiEntropyProtocol(
            config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL, period=2, offset=1)
        )
    if name == "hotlist":
        return HotListProtocol(batch_size=2)
    raise AssertionError(name)


class TestProtocolFuzz:
    @given(
        protocols=st.lists(PROTOCOL_CHOICES, min_size=1, max_size=3, unique=True),
        k=st.integers(1, 4),
        seed=st.integers(0, 10_000),
        churn=st.booleans(),
        deletes=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_stack_keeps_invariants(self, protocols, k, seed, churn, deletes):
        """Any combination of mechanisms under workload (and optional
        churn and deletes) maintains every structural invariant."""
        cluster = Cluster(n=16, seed=seed)
        if churn:
            cluster.add_protocol(RandomChurn(crash_rate=0.05, recovery_rate=0.3))
        for name in protocols:
            cluster.add_protocol(build_protocol(name, k))
        cluster.add_protocol(
            DeathCertificateManager(CertificatePolicy(tau1=15.0, tau2=100.0))
        )
        checker = InvariantChecker()
        cluster.add_protocol(checker)
        driver = WorkloadDriver(
            cluster,
            WorkloadConfig(
                updates_per_cycle=1.0,
                key_space=6,
                delete_fraction=0.25 if deletes else 0.0,
            ),
            seed=seed,
        )
        driver.run(cycles=12)   # raises InvariantViolation on any breach
        assert checker.checks_run == 12

    @given(
        protocols=st.lists(PROTOCOL_CHOICES, min_size=1, max_size=2, unique=True),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_stacks_with_a_complete_mechanism_converge(self, protocols, seed):
        """Any stack containing at least one eventually-complete
        mechanism (anti-entropy / hot-list / pushpull rumor + the
        others' help) drives replicas to agreement after quiescence."""
        if not ({"anti-entropy", "hotlist"} & set(protocols)):
            protocols = protocols + ["anti-entropy"]
        cluster = Cluster(n=12, seed=seed)
        for name in protocols:
            cluster.add_protocol(build_protocol(name, 2))
        cluster.add_protocol(InvariantChecker())
        driver = WorkloadDriver(
            cluster, WorkloadConfig(updates_per_cycle=1.0, key_space=5), seed=seed
        )
        driver.run(cycles=10)
        cluster.run_until(cluster.converged, max_cycles=200)
        assert cluster.converged()
