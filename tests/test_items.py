"""Entries: versioned values, NIL, death certificates (Sections 1.1, 2)."""

import pickle

import pytest

from repro.core.items import (
    NIL,
    DeathCertificate,
    VersionedValue,
    make_entry,
    newer,
    validate_key,
)
from repro.core.timestamps import Timestamp


def ts(t: float, site: int = 0, seq: int = 0) -> Timestamp:
    return Timestamp(t, site, seq)


class TestNil:
    def test_is_singleton(self):
        from repro.core.items import _Nil

        assert _Nil() is NIL

    def test_survives_pickling_as_singleton(self):
        assert pickle.loads(pickle.dumps(NIL)) is NIL

    def test_repr(self):
        assert repr(NIL) == "NIL"


class TestVersionedValue:
    def test_not_a_deletion(self):
        assert not VersionedValue("v", ts(1)).is_deletion

    def test_supersedes_by_timestamp(self):
        old = VersionedValue("a", ts(1))
        new = VersionedValue("b", ts(2))
        assert new.supersedes(old)
        assert not old.supersedes(new)

    def test_supersedes_nothing_present(self):
        assert VersionedValue("a", ts(1)).supersedes(None)

    def test_encoding_distinguishes_values_and_stamps(self):
        a = VersionedValue("x", ts(1)).encode()
        b = VersionedValue("y", ts(1)).encode()
        c = VersionedValue("x", ts(2)).encode()
        assert len({a, b, c}) == 3


class TestDeathCertificate:
    def test_value_is_nil(self):
        cert = DeathCertificate(ts(1), ts(1))
        assert cert.value is NIL
        assert cert.is_deletion

    def test_activation_cannot_precede_ordinary(self):
        with pytest.raises(ValueError):
            DeathCertificate(timestamp=ts(5), activation_timestamp=ts(4))

    def test_cancels_older_value(self):
        cert = DeathCertificate(ts(2), ts(2))
        assert cert.supersedes(VersionedValue("old", ts(1)))

    def test_does_not_cancel_newer_value(self):
        cert = DeathCertificate(ts(2), ts(2))
        assert not cert.supersedes(VersionedValue("reinstated", ts(3)))

    def test_reactivation_preserves_ordinary_timestamp(self):
        cert = DeathCertificate(ts(2.0), ts(2.0), retention_sites=(1, 2))
        awakened = cert.reactivated(now=50.0)
        assert awakened.timestamp == cert.timestamp
        assert awakened.activation_timestamp.time == 50.0
        assert awakened.retention_sites == (1, 2)

    def test_reactivated_certificate_still_spares_reinstatement(self):
        # The Section 2.2 correctness property: an update between the
        # original and revised timestamps must not be cancelled.
        cert = DeathCertificate(ts(2.0), ts(2.0))
        reinstated = VersionedValue("back", ts(10.0))
        awakened = cert.reactivated(now=50.0)
        assert not awakened.supersedes(reinstated)

    def test_expiry_thresholds(self):
        cert = DeathCertificate(ts(0.0), ts(0.0))
        assert not cert.is_expired(now=10.0, tau1=10.0)
        assert cert.is_expired(now=10.1, tau1=10.0)
        assert not cert.is_discardable(now=30.0, tau1=10.0, tau2=20.0)
        assert cert.is_discardable(now=30.1, tau1=10.0, tau2=20.0)

    def test_expiry_follows_activation_not_ordinary_timestamp(self):
        cert = DeathCertificate(ts(0.0), ts(0.0)).reactivated(now=100.0)
        assert not cert.is_expired(now=105.0, tau1=10.0)

    def test_encoding_ignores_activation_timestamp(self):
        # Replicas differing only in activation state must still agree
        # on checksums.
        cert = DeathCertificate(ts(1.0), ts(1.0))
        awakened = cert.reactivated(now=9.0)
        assert cert.encode() == awakened.encode()


class TestHelpers:
    def test_make_entry_builds_value(self):
        entry = make_entry("v", ts(1))
        assert isinstance(entry, VersionedValue)

    def test_make_entry_builds_certificate_for_nil(self):
        entry = make_entry(NIL, ts(1))
        assert isinstance(entry, DeathCertificate)
        assert entry.activation_timestamp == entry.timestamp

    def test_make_entry_builds_certificate_for_none(self):
        assert make_entry(None, ts(1)).is_deletion

    def test_newer_picks_larger_timestamp(self):
        a = VersionedValue("a", ts(1))
        b = VersionedValue("b", ts(2))
        assert newer(a, b) is b
        assert newer(b, a) is b
        assert newer(a, None) is a
        assert newer(None, None) is None

    def test_validate_key_rejects_none(self):
        with pytest.raises(ValueError):
            validate_key(None)

    def test_validate_key_rejects_unhashable(self):
        with pytest.raises(TypeError):
            validate_key(["list", "key"])

    def test_validate_key_accepts_tuples_and_strings(self):
        assert validate_key(("a", 1)) == ("a", 1)
        assert validate_key("name") == "name"
        assert validate_key(3.5) == 3.5
        assert validate_key(True) is True

    def test_validate_key_rejects_non_canonical_types(self):
        # Hashable but without a canonical byte encoding: the checksum
        # layer could not digest these consistently across processes.
        for key in (frozenset({"a"}), b"bytes", object(), ("ok", object())):
            with pytest.raises(ValueError):
                validate_key(key)
