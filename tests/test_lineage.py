"""Infection-tree reconstruction and anomaly analytics."""

from repro.cluster.cluster import Cluster
from repro.obs.events import Event, EventKind, HARNESS_NODE, RingBufferSink
from repro.obs.lineage import InfectionTree, LineageIndex, render_analysis
from repro.obs.spans import DeliverySpan
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode


def span(node, t, src=None, hop=None, first=True, sent_at=None, trace="k@1#0.0"):
    return DeliverySpan(
        node=node,
        time=float(t),
        key="k",
        trace=trace,
        src=src,
        hop=hop,
        first=first,
        sent_at=sent_at,
        result="applied" if first else "equal",
    )


def chain_tree(*spans):
    tree = InfectionTree("k@1#0.0")
    for s in spans:
        tree.add(s)
    return tree


class TestTreeStructure:
    def test_root_and_children(self):
        tree = chain_tree(
            span(0, 0.0, hop=0),
            span(1, 1.0, src=0, hop=1),
            span(2, 1.5, src=0, hop=1),
            span(3, 2.0, src=1, hop=2),
        )
        assert tree.root == 0
        assert tree.children() == {0: [1, 2], 1: [3]}
        assert tree.infected() == [0, 1, 2, 3]
        assert tree.max_depth == 2
        assert tree.complete(4)
        assert not tree.complete(5)

    def test_depth_falls_back_to_tree_walk_without_hops(self):
        """A trace from v1 peers has no wire hop counts; depth still
        resolves by walking first-delivery src links."""
        tree = chain_tree(
            span(0, 0.0),
            span(1, 1.0, src=0),
            span(2, 2.0, src=1),
        )
        assert tree.depth_of(0) == 0
        assert tree.depth_of(1) == 1
        assert tree.depth_of(2) == 2

    def test_hop_latency_is_child_minus_parent(self):
        tree = chain_tree(span(0, 0.0), span(1, 2.5, src=0), span(2, 4.0, src=1))
        assert tree.hop_latency(0) is None  # the root has no inbound hop
        assert tree.hop_latency(1) == 2.5
        assert tree.hop_latency(2) == 1.5
        assert tree.hop_latencies() == [(1, 2.5), (2, 1.5)]

    def test_network_latency_uses_sent_at(self):
        tree = chain_tree(span(0, 0.0), span(1, 5.0, src=0, sent_at=4.75))
        assert tree.network_latency(1) == 0.25
        assert tree.network_latency(0) is None

    def test_redundant_and_link_traffic_attribution(self):
        tree = chain_tree(
            span(0, 0.0),
            span(1, 1.0, src=0),
            span(1, 2.0, src=0, first=False),
            span(0, 2.0, src=1, first=False),
            span(0, 3.0, src=1, first=False),
        )
        assert tree.redundant[(0, 1)] == 1
        assert tree.redundant[(1, 0)] == 2
        assert tree.link_traffic[(0, 1)] == 2  # first + redundant
        assert tree.link_traffic[(1, 0)] == 2


class TestAnomalies:
    def test_clean_tree_has_none(self):
        tree = chain_tree(span(0, 0.0), span(1, 1.0, src=0), span(2, 1.0, src=0))
        assert tree.anomalies(n=3) == []

    def test_incomplete_tree(self):
        tree = chain_tree(span(0, 0.0), span(1, 1.0, src=0))
        flags = tree.anomalies(n=4)
        assert any("incomplete" in f and "2/4" in f for f in flags)

    def test_duplicate_first_delivery(self):
        tree = chain_tree(span(0, 0.0), span(1, 1.0, src=0), span(1, 3.0, src=0))
        flags = tree.anomalies(n=2)
        assert any("more than once" in f for f in flags)
        assert not tree.complete(2)

    def test_orphan_edge(self):
        tree = chain_tree(span(0, 0.0), span(2, 1.0, src=9))
        assert any("orphan" in f for f in tree.anomalies(n=3))

    def test_hop_budget_exceeded(self):
        # A 12-deep chain in an n=8 tree: way past 2*ceil(log2 8)+2 = 8.
        spans = [span(0, 0.0, hop=0)]
        for i in range(1, 13):
            spans.append(span(i, float(i), src=i - 1, hop=i))
        flags = chain_tree(*spans).anomalies(n=8)
        assert any("O(log n) budget" in f for f in flags)

    def test_stalled_subtree(self):
        tree = chain_tree(
            span(0, 0.0),
            span(1, 1.0, src=0),
            span(2, 2.0, src=1),
            span(3, 3.0, src=2),
            span(4, 103.0, src=3),  # 100x the median hop
        )
        flags = tree.anomalies(n=5)
        assert any("stalled" in f and "node 4" in f for f in flags)


def run_started(n, key="k"):
    return Event(EventKind.RUN_STARTED, 0.0, HARNESS_NODE, payload={"n": n, "key": key})


class TestLineageIndex:
    def test_takes_defaults_from_run_started(self):
        index = LineageIndex.from_events([run_started(7, "k")])
        assert index.n == 7 and index.key == "k"

    def test_groups_spans_by_trace(self):
        cluster = Cluster(n=4, seed=0)
        sink = cluster.bus.add_sink(RingBufferSink())
        cluster.inject_update(0, "a", 1)
        cluster.inject_update(1, "b", 2)
        index = LineageIndex.from_events(sink.events)
        assert len(index.trees) == 2
        assert index.tree_for_key("a").root == 0
        assert index.tree_for_key("b").root == 1
        assert index.tree_for_key("missing") is None

    def test_sim_end_to_end_complete_tree(self):
        """Acceptance shape: an anti-entropy epidemic's tree contains
        every site exactly once as a first-delivery edge."""
        n = 16
        cluster = Cluster(n=n, seed=11)
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
        )
        sink = cluster.bus.add_sink(RingBufferSink())
        cluster.bus.emit(EventKind.RUN_STARTED, node=HARNESS_NODE, n=n, key="k")
        cluster.inject_update(0, "k", "v", track=True)
        metrics = cluster.metrics
        cluster.run_until(lambda: metrics.infected == n, max_cycles=60)

        index = LineageIndex.from_events(sink.events)
        tree = index.tree_for_key("k")
        assert tree.complete(n)
        assert tree.infected() == list(range(n))
        assert tree.root == 0
        assert not tree.duplicate_first
        # Every non-root edge has a measurable hop latency (in cycles).
        for node in range(1, n):
            assert tree.hop_latency(node) is not None
            assert tree.hop_latency(node) >= 0
        assert [trace for trace, _ in index.anomalies()] == []

    def test_analysis_is_deterministic(self):
        cluster = Cluster(n=8, seed=3)
        sink = cluster.bus.add_sink(RingBufferSink())
        cluster.bus.emit(EventKind.RUN_STARTED, node=HARNESS_NODE, n=8, key="k")
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH))
        )
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(10)
        events = sink.events
        first = LineageIndex.from_events(events)
        second = LineageIndex.from_events(events)
        assert first.to_dict() == second.to_dict()
        assert render_analysis(first) == render_analysis(second)


class TestRender:
    def test_report_mentions_every_node_and_flags(self):
        index = LineageIndex.from_events([run_started(3)])
        tree = InfectionTree("k@1#0.0")
        for s in (span(0, 0.0), span(1, 1.0, src=0)):
            tree.add(s)
        index.trees["k@1#0.0"] = tree
        lines = render_analysis(index)
        text = "\n".join(lines)
        assert "trace k@1#0.0" in text
        assert "[INCOMPLETE]" in text
        assert "node 0: inject" in text
        assert "node 1: from 0" in text
        assert "incomplete tree: 2/3" in text

    def test_empty_trace_renders_a_hint(self):
        lines = render_analysis(LineageIndex())
        assert any("no delivery spans" in line for line in lines)
