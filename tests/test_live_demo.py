"""End-to-end: a real localhost TCP cluster converges on one update.

Three nodes on ephemeral ports, one injected update, and a wall-clock
bound on convergence — the live-runtime acceptance test.  The bound is
deliberately generous (anti-entropy alone covers 3 nodes in a couple
of 50 ms rounds; 15 s absorbs any CI scheduling noise).
"""

import asyncio

from repro.net.node import NodeConfig
from repro.net.peer import RetryPolicy
from repro.net.runner import LiveCluster, live_demo

FAST = NodeConfig(
    anti_entropy_interval=0.05,
    rumor_interval=0.02,
    retry=RetryPolicy(connect_timeout=1.0, io_timeout=2.0, attempts=2),
)

BOUND_SECONDS = 15.0


class TestThreeNodeConvergence:
    def test_one_update_reaches_every_store(self):
        async def scenario():
            cluster = await LiveCluster.launch(3, FAST)
            try:
                await cluster.inject(0, "printer:bldg-35", "10.0.7.12")
                converged = await cluster.wait_converged(
                    "printer:bldg-35", timeout=BOUND_SECONDS
                )
                probes = await cluster.probe_all()
            finally:
                await cluster.stop()
            return converged, probes

        converged, probes = asyncio.run(scenario())
        assert converged, "3-node cluster failed to converge within the bound"
        assert sorted(probes) == [0, 1, 2]
        checksums = {p["checksum"] for p in probes.values()}
        assert len(checksums) == 1
        for payload in probes.values():
            assert payload["entries"] == 1
            assert "printer:bldg-35" in payload["received"]

    def test_live_demo_report(self):
        report = asyncio.run(live_demo(nodes=3, config=FAST, timeout=BOUND_SECONDS))
        assert report.converged
        assert report.n == 3
        assert report.residue == 0.0          # nobody missed the update
        assert 0.0 <= report.t_ave <= report.t_last <= BOUND_SECONDS
        assert len(report.nodes) == 3
        # The injecting node's delay is ~0; everyone has a receipt time.
        assert all(row.receipt_delay is not None for row in report.nodes)
        assert any("converged=True" in line for line in report.lines())

    def test_killing_a_node_does_not_block_survivors(self):
        report = asyncio.run(
            live_demo(nodes=3, config=FAST, churn=True, timeout=BOUND_SECONDS)
        )
        assert report.converged
        assert report.churned_node == 2
        # The restarted-empty node was caught up by anti-entropy.
        assert all(row.entries == 1 for row in report.nodes)
