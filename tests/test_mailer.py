"""The unreliable queued mail service (Section 1.2)."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.mailer import MailSystem, Mailbox
from repro.sim.rng import RngRegistry


def make_mail(loss=0.0, capacity=None, latency=1.0, seed=0):
    sim = Simulator()
    mail = MailSystem(
        sim, RngRegistry(seed), loss_probability=loss,
        mailbox_capacity=capacity, latency=latency,
    )
    return sim, mail


class TestDelivery:
    def test_letter_arrives_after_latency(self):
        sim, mail = make_mail(latency=2.0)
        mail.post(0, 1, "hello")
        sim.run(until=1.0)
        assert len(mail.mailbox(1)) == 0
        sim.run(until=2.0)
        letters = mail.receive(1)
        assert len(letters) == 1
        assert letters[0].payload == "hello"
        assert letters[0].source == 0
        assert letters[0].posted_at == 0.0

    def test_receive_drains_mailbox(self):
        sim, mail = make_mail()
        mail.post(0, 1, "a")
        mail.post(0, 1, "b")
        sim.run()
        assert [l.payload for l in mail.receive(1)] == ["a", "b"]
        assert mail.receive(1) == []

    def test_delivery_callback(self):
        sim, mail = make_mail()
        seen = []
        mail.on_delivery(lambda letter: seen.append(letter.payload))
        mail.post(0, 1, "x")
        sim.run()
        assert seen == ["x"]

    def test_stats_track_posted_and_delivered(self):
        sim, mail = make_mail()
        for i in range(5):
            mail.post(0, i, i)
        sim.run()
        assert mail.stats.posted == 5
        assert mail.stats.delivered == 5
        assert mail.stats.delivery_ratio == 1.0


class TestFailureModes:
    def test_loss_probability_drops_messages(self):
        sim, mail = make_mail(loss=0.5, seed=3)
        for i in range(200):
            mail.post(0, 1, i)
        sim.run()
        assert 0 < mail.stats.dropped_loss < 200
        assert mail.stats.delivered + mail.stats.dropped_loss == 200
        # Roughly half lost (binomial, wide tolerance).
        assert 60 <= mail.stats.dropped_loss <= 140

    def test_overflow_drops_when_mailbox_full(self):
        sim, mail = make_mail(capacity=3)
        for i in range(5):
            mail.post(0, 1, i)
        sim.run()
        assert mail.stats.dropped_overflow == 2
        assert len(mail.mailbox(1)) == 3

    def test_draining_restores_capacity(self):
        sim, mail = make_mail(capacity=1)
        mail.post(0, 1, "first")
        sim.run()
        mail.receive(1)
        mail.post(0, 1, "second")
        sim.run()
        assert [l.payload for l in mail.receive(1)] == ["second"]

    def test_loss_probability_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MailSystem(sim, RngRegistry(0), loss_probability=1.5)

    def test_negative_latency_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            MailSystem(sim, RngRegistry(0), latency=-1.0)


class TestMailbox:
    def test_unbounded_by_default(self):
        box = Mailbox()
        assert not box.full

    def test_full_at_capacity(self):
        box = Mailbox(capacity=1)
        from repro.sim.mailer import Letter

        assert box.push(Letter(0, 1, "a", 0.0))
        assert box.full
        assert not box.push(Letter(0, 1, "b", 0.0))
