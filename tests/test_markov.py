"""Exact Markov analysis of simple epidemics, validated three ways:
against hand computation, against the asymptotic formulas, and against
the stochastic simulation."""

import pytest

from repro.analysis.markov import (
    completion_probability_after,
    expected_cycles_to_complete,
    expected_infected_after,
    pull_new_infections,
    push_new_infections,
    push_pull_new_infections,
    state_distribution_after,
)


class TestTransitionLaws:
    def test_push_two_sites(self):
        # One infected of two: its single contact must hit the other.
        assert push_new_infections(2, 1) == pytest.approx([0.0, 1.0])

    def test_push_hand_computed_three_sites(self):
        # n=3, i=1: one throw over two partners, one susceptible... both
        # others are susceptible, so the throw always infects someone.
        assert push_new_infections(3, 1) == pytest.approx([0.0, 1.0, 0.0])
        # n=3, i=2: two throws; each hits the lone susceptible w.p. 1/2.
        # P(no hit) = 1/4, P(hit) = 3/4.
        assert push_new_infections(3, 2) == pytest.approx([0.25, 0.75])

    def test_pull_hand_computed(self):
        # n=3, i=1: each of 2 susceptibles pulls the infected w.p. 1/2.
        assert pull_new_infections(3, 1) == pytest.approx([0.25, 0.5, 0.25])

    def test_laws_are_distributions(self):
        for law in (push_new_infections, pull_new_infections,
                    push_pull_new_infections):
            for n, i in [(5, 1), (10, 4), (20, 19)]:
                distribution = law(n, i)
                assert sum(distribution) == pytest.approx(1.0)
                assert all(p >= -1e-15 for p in distribution)

    def test_push_pull_dominates_both(self):
        """Push-pull infects at least as many in expectation."""
        n, i = 12, 4

        def mean(dist):
            return sum(k * p for k, p in enumerate(dist))

        push = mean(push_new_infections(n, i))
        pull = mean(pull_new_infections(n, i))
        both = mean(push_pull_new_infections(n, i))
        assert both > push
        assert both > pull

    def test_state_validation(self):
        with pytest.raises(ValueError):
            push_new_infections(1, 1)
        with pytest.raises(ValueError):
            pull_new_infections(5, 0)
        with pytest.raises(ValueError):
            push_pull_new_infections(5, 6)


class TestAbsorptionTimes:
    def test_two_sites_takes_one_cycle(self):
        assert expected_cycles_to_complete(2, "push") == pytest.approx(1.0)
        assert expected_cycles_to_complete(2, "pull") == pytest.approx(1.0)

    def test_push_matches_pittel_asymptotically(self):
        from repro.analysis.epidemic_theory import pittel_push_cycles

        for n in (64, 128, 256):
            exact = expected_cycles_to_complete(n, "push")
            assert exact == pytest.approx(pittel_push_cycles(n), rel=0.2)

    def test_push_pull_fastest(self):
        n = 64
        push = expected_cycles_to_complete(n, "push")
        pull = expected_cycles_to_complete(n, "pull")
        both = expected_cycles_to_complete(n, "push-pull")
        assert both < push
        assert both < pull

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            expected_cycles_to_complete(10, "sideways")


class TestStateDistribution:
    def test_distribution_normalized_every_cycle(self):
        for cycles in (0, 1, 5, 20):
            distribution = state_distribution_after(20, cycles, "push")
            assert sum(distribution) == pytest.approx(1.0)

    def test_mass_moves_to_absorption(self):
        assert completion_probability_after(16, 0, "push") == 0.0
        assert completion_probability_after(16, 40, "push") == pytest.approx(
            1.0, abs=1e-6
        )

    def test_expected_infected_monotone(self):
        values = [
            expected_infected_after(30, c, "push-pull") for c in range(8)
        ]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_early_doubling(self):
        # With one seed, push roughly doubles while collisions are rare.
        expected = expected_infected_after(1000, 4, "push")
        assert expected == pytest.approx(16.0, rel=0.08)


class TestAgainstSimulation:
    def test_exact_chain_predicts_simulated_completion(self):
        """The stochastic cluster matches the exact chain's completion
        probability (n=32, push, 12 cycles)."""
        from repro.cluster.cluster import Cluster
        from repro.protocols.anti_entropy import (
            AntiEntropyConfig,
            AntiEntropyProtocol,
        )
        from repro.protocols.base import ExchangeMode
        from repro.sim.rng import derive_seed

        n, cycles, trials = 32, 12, 120
        completions = 0
        for trial in range(trials):
            cluster = Cluster(n=n, seed=derive_seed(1234, trial))
            cluster.add_protocol(
                AntiEntropyProtocol(
                    config=AntiEntropyConfig(mode=ExchangeMode.PUSH)
                )
            )
            cluster.inject_update(0, "k", "v", track=True)
            cluster.run_cycles(cycles)
            if cluster.metrics.complete:
                completions += 1
        simulated = completions / trials
        exact = completion_probability_after(n, cycles, "push")
        # Binomial(120, exact) standard deviation is about 0.04.
        assert simulated == pytest.approx(exact, abs=0.13)

    def test_exact_chain_predicts_simulated_mean_infected(self):
        from repro.cluster.cluster import Cluster
        from repro.protocols.anti_entropy import (
            AntiEntropyConfig,
            AntiEntropyProtocol,
        )
        from repro.protocols.base import ExchangeMode
        from repro.sim.rng import derive_seed

        n, cycles, trials = 64, 5, 100
        total = 0
        for trial in range(trials):
            cluster = Cluster(n=n, seed=derive_seed(99, trial))
            cluster.add_protocol(
                AntiEntropyProtocol(
                    config=AntiEntropyConfig(mode=ExchangeMode.PULL)
                )
            )
            cluster.inject_update(0, "k", "v", track=True)
            cluster.run_cycles(cycles)
            total += cluster.metrics.infected
        simulated_mean = total / trials
        exact_mean = expected_infected_after(n, cycles, "pull")
        assert simulated_mean == pytest.approx(exact_mean, rel=0.15)
