"""Dynamic membership: sites joining and leaving a live cluster."""

import pytest

from repro.cluster.cluster import Cluster
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.backup import AntiEntropyBackup
from repro.protocols.base import ExchangeMode
from repro.protocols.deathcerts import CertificatePolicy, DeathCertificateManager
from repro.protocols.direct_mail import DirectMailProtocol
from repro.protocols.hotlist import HotListProtocol
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.topology import builders


def anti_entropy_cluster(n=10, seed=0):
    cluster = Cluster(n=n, seed=seed)
    cluster.add_protocol(
        AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
    )
    return cluster


class TestAddSite:
    def test_new_site_catches_up_via_anti_entropy(self):
        cluster = anti_entropy_cluster()
        cluster.inject_update(0, "k", "v")
        cluster.run_until(cluster.converged, max_cycles=50)
        newcomer = cluster.add_site()
        assert cluster.sites[newcomer].store.get("k") is None
        cluster.run_until(cluster.converged, max_cycles=50)
        assert cluster.sites[newcomer].store.get("k") == "v"

    def test_new_site_participates_in_spreading(self):
        cluster = anti_entropy_cluster(n=5, seed=1)
        newcomer = cluster.add_site()
        cluster.inject_update(newcomer, "from-newcomer", "x")
        cluster.run_until(cluster.converged, max_cycles=50)
        assert cluster.sites[0].store.get("from-newcomer") == "x"

    def test_explicit_id_on_edgeless_topology(self):
        cluster = anti_entropy_cluster(n=3)
        assert cluster.add_site(77) == 77
        assert 77 in cluster.site_ids

    def test_duplicate_participant_rejected(self):
        cluster = anti_entropy_cluster(n=3)
        with pytest.raises(ValueError):
            cluster.add_site(0)

    def test_routed_topology_requires_existing_topology_site(self):
        topo = builders.line(6)
        cluster = Cluster(topology=topo, participants=[0, 1, 2, 3], seed=0)
        with pytest.raises(ValueError):
            cluster.add_site()          # must name a site
        with pytest.raises(ValueError):
            cluster.add_site(99)        # not in the topology
        cluster.add_site(4)
        assert 4 in cluster.site_ids

    def test_rumor_state_initialized_for_newcomer(self):
        cluster = Cluster(n=5, seed=2)
        rumor = RumorMongeringProtocol(RumorConfig(k=2))
        cluster.add_protocol(rumor)
        newcomer = cluster.add_site()
        cluster.inject_update(newcomer, "k", "v")
        assert rumor.is_infective(newcomer, "k")

    def test_hotlist_order_initialized_for_newcomer(self):
        cluster = Cluster(n=5, seed=3)
        hotlist = HotListProtocol()
        cluster.add_protocol(hotlist)
        newcomer = cluster.add_site()
        cluster.inject_update(newcomer, "k", "v")
        assert "k" in hotlist.order_of(newcomer)
        cluster.run_until(cluster.converged, max_cycles=60)
        assert cluster.sites[0].store.get("k") == "v"

    def test_direct_mail_reaches_newcomer(self):
        cluster = Cluster(n=5, seed=4)
        cluster.add_protocol(DirectMailProtocol())
        cluster.inject_update(0, "before", "b")   # caches membership
        cluster.run_cycle()
        newcomer = cluster.add_site()
        cluster.inject_update(0, "after", "a")
        cluster.run_cycle()
        assert cluster.sites[newcomer].store.get("after") == "a"
        assert cluster.sites[newcomer].store.get("before") is None

    def test_certificate_ttl_propagates_to_newcomer(self):
        cluster = Cluster(n=4, seed=5)
        cluster.add_protocol(
            DeathCertificateManager(CertificatePolicy(tau1=7.0))
        )
        newcomer = cluster.add_site()
        assert cluster.sites[newcomer].store.certificate_ttl == 7.0

    def test_backup_composite_handles_join(self):
        cluster = Cluster(n=10, seed=6)
        protocol = AntiEntropyBackup(anti_entropy_period=2)
        cluster.add_protocol(protocol)
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(3)
        newcomer = cluster.add_site()
        cluster.run_until(cluster.converged, max_cycles=60)
        assert cluster.sites[newcomer].store.get("k") == "v"


class TestRemoveSite:
    def test_removed_site_is_gone(self):
        cluster = anti_entropy_cluster()
        cluster.remove_site(3)
        assert 3 not in cluster.site_ids
        assert 3 not in cluster.sites
        assert cluster.n == 9

    def test_cluster_keeps_converging_after_removal(self):
        cluster = anti_entropy_cluster(seed=7)
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(2)
        cluster.remove_site(5)
        cluster.run_until(cluster.converged, max_cycles=50)
        assert all(
            cluster.sites[s].store.get("k") == "v" for s in cluster.site_ids
        )

    def test_unknown_site_rejected(self):
        cluster = anti_entropy_cluster()
        with pytest.raises(ValueError):
            cluster.remove_site(999)

    def test_cannot_remove_last_site(self):
        cluster = Cluster(n=1, seed=0)
        with pytest.raises(ValueError):
            cluster.remove_site(0)

    def test_rumor_state_dropped(self):
        cluster = Cluster(n=6, seed=8)
        rumor = RumorMongeringProtocol(RumorConfig(k=2))
        cluster.add_protocol(rumor)
        cluster.inject_update(4, "k", "v")
        cluster.remove_site(4)
        assert not rumor.is_infective(4)
        cluster.run_cycles(5)  # must not crash on the departed site

    def test_partition_entry_cleaned_up(self):
        cluster = anti_entropy_cluster()
        cluster.set_partition([[0, 1, 2], [3, 4, 5]])
        cluster.remove_site(3)
        assert cluster.can_communicate(4, 5)

    def test_membership_churn_end_to_end(self):
        """Sites joining and leaving while updates flow: the survivors
        still converge on everything."""
        cluster = anti_entropy_cluster(n=8, seed=9)
        cluster.inject_update(0, "k0", 0)
        for round_number in range(4):
            cluster.run_cycles(3)
            newcomer = cluster.add_site()
            cluster.inject_update(newcomer, f"k{round_number + 1}", round_number + 1)
            departing = cluster.site_ids[round_number]
            cluster.remove_site(departing)
        cluster.run_until(cluster.converged, max_cycles=80)
        reference = cluster.sites[cluster.site_ids[0]].store
        assert reference.get("k4") == 4


class TestClockSkewOnJoin:
    """add_site must apply the cluster's clock_skew function (it used
    to build the late joiner's clock with skew 0 regardless)."""

    def test_late_joiner_gets_skewed_clock(self):
        cluster = Cluster(n=4, seed=0, clock_skew=lambda site_id: site_id * 0.5)
        newcomer = cluster.add_site()
        assert cluster.sites[newcomer].store.clock.skew == newcomer * 0.5

    def test_initial_and_late_sites_agree_on_skew_rule(self):
        cluster = Cluster(n=3, seed=0, clock_skew=lambda site_id: 2.0)
        newcomer = cluster.add_site()
        skews = {
            site_id: cluster.sites[site_id].store.clock.skew
            for site_id in cluster.site_ids
        }
        assert skews == {site_id: 2.0 for site_id in [0, 1, 2, newcomer]}

    def test_no_skew_function_means_zero_skew(self):
        cluster = Cluster(n=3, seed=0)
        newcomer = cluster.add_site()
        assert cluster.sites[newcomer].store.clock.skew == 0.0

    def test_skewed_timestamps_visible_in_updates(self):
        cluster = Cluster(n=2, seed=0, clock_skew=lambda site_id: 100.0)
        cluster.run_cycles(1)
        newcomer = cluster.add_site()
        update = cluster.sites[newcomer].store.update("k", "v")
        assert update.entry.timestamp.time >= 100.0


class TestExplicitSelectorRebuild:
    """An explicitly-passed UniformSelector must follow membership
    changes instead of serving a stale site list forever."""

    def _cluster_with_explicit_selector(self, protocol_factory, n=6, seed=3):
        from repro.topology.spatial import UniformSelector

        cluster = Cluster(n=n, seed=seed)
        selector = UniformSelector(cluster.site_ids)
        cluster.add_protocol(protocol_factory(selector))
        return cluster, selector

    def test_anti_entropy_selector_learns_of_newcomer(self):
        cluster, selector = self._cluster_with_explicit_selector(
            lambda s: AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL), selector=s
            )
        )
        newcomer = cluster.add_site()
        assert selector.probability(0, newcomer) > 0.0

    def test_anti_entropy_selector_forgets_departed(self):
        cluster, selector = self._cluster_with_explicit_selector(
            lambda s: AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL), selector=s
            )
        )
        cluster.remove_site(5)
        assert selector.probability(0, 5) == 0.0
        cluster.run_cycles(10)  # choices never name the departed site

    def test_rumor_selector_follows_membership(self):
        cluster, selector = self._cluster_with_explicit_selector(
            lambda s: RumorMongeringProtocol(RumorConfig(k=2), selector=s)
        )
        newcomer = cluster.add_site()
        cluster.remove_site(1)
        assert selector.probability(0, newcomer) > 0.0
        assert selector.probability(0, 1) == 0.0

    def test_epidemic_reaches_newcomer_through_explicit_selector(self):
        cluster, __ = self._cluster_with_explicit_selector(
            lambda s: AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL), selector=s
            )
        )
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(2)
        newcomer = cluster.add_site()
        cluster.run_until(cluster.converged, max_cycles=60)
        assert cluster.sites[newcomer].store.get("k") == "v"

    def test_add_and_remove_mid_epidemic(self):
        cluster, selector = self._cluster_with_explicit_selector(
            lambda s: AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL), selector=s
            ),
            n=8,
            seed=4,
        )
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(1)
        newcomer = cluster.add_site()
        cluster.remove_site(3)
        cluster.run_until(cluster.converged, max_cycles=80)
        assert cluster.sites[newcomer].store.get("k") == "v"
        assert selector.probability(0, 3) == 0.0
