"""Metrics: residue, traffic m, delays, per-link accounting."""

import math

import pytest

from repro.sim.metrics import (
    EpidemicMetrics,
    LinkTraffic,
    Summary,
    TrafficCounter,
    canonical_edge,
    mean,
)


class TestEpidemicMetrics:
    def test_residue_counts_never_infected(self):
        metrics = EpidemicMetrics(n=10)
        for site in range(7):
            metrics.record_receipt(site, float(site))
        assert metrics.residue == pytest.approx(0.3)
        assert metrics.infected == 7
        assert not metrics.complete

    def test_complete_when_all_infected(self):
        metrics = EpidemicMetrics(n=3)
        for site in range(3):
            metrics.record_receipt(site, 1.0)
        assert metrics.complete
        assert metrics.residue == 0.0

    def test_first_receipt_wins(self):
        metrics = EpidemicMetrics(n=2)
        metrics.record_receipt(0, 1.0)
        metrics.record_receipt(0, 5.0)
        assert metrics.receipt_times[0] == 1.0

    def test_delays_relative_to_injection(self):
        metrics = EpidemicMetrics(n=3, injection_time=10.0)
        metrics.record_receipt(0, 10.0)
        metrics.record_receipt(1, 12.0)
        metrics.record_receipt(2, 16.0)
        assert metrics.t_ave == pytest.approx((0 + 2 + 6) / 3)
        assert metrics.t_last == pytest.approx(6.0)

    def test_delays_nan_when_nobody_received(self):
        metrics = EpidemicMetrics(n=3)
        assert math.isnan(metrics.t_ave)
        assert math.isnan(metrics.t_last)

    def test_traffic_per_site(self):
        metrics = EpidemicMetrics(n=4)
        metrics.record_update_send(6)
        assert metrics.traffic_per_site == 1.5

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            EpidemicMetrics(n=0)


class TestTrafficCounter:
    def test_add_path_charges_every_link(self):
        counter = TrafficCounter()
        counter.add_path([0, 1, 2, 3])
        assert counter.total == 3
        assert counter.on_link(1, 2) == 1
        assert counter.on_link(2, 1) == 1  # undirected

    def test_single_node_path_charges_nothing(self):
        counter = TrafficCounter()
        counter.add_path([5])
        assert counter.total == 0

    def test_canonical_edge_orientation(self):
        assert canonical_edge(5, 2) == (2, 5)
        assert canonical_edge(2, 5) == (2, 5)

    def test_per_link_average_includes_idle_links(self):
        counter = TrafficCounter()
        counter.add_edge(0, 1, 10.0)
        assert counter.per_link_average(link_count=5) == 2.0

    def test_max_link(self):
        counter = TrafficCounter()
        counter.add_edge(0, 1, 3.0)
        counter.add_edge(1, 2, 7.0)
        edge, load = counter.max_link()
        assert edge == (1, 2)
        assert load == 7.0

    def test_max_link_empty(self):
        assert TrafficCounter().max_link() == (None, 0.0)

    def test_merge_accumulates(self):
        a = TrafficCounter()
        a.add_edge(0, 1, 1.0)
        b = TrafficCounter()
        b.add_edge(0, 1, 2.0)
        b.add_edge(1, 2, 4.0)
        a.merge(b)
        assert a.on_link(0, 1) == 3.0
        assert a.total == 7.0

    def test_scaled(self):
        counter = TrafficCounter()
        counter.add_edge(0, 1, 4.0)
        half = counter.scaled(0.5)
        assert half.on_link(0, 1) == 2.0
        assert counter.on_link(0, 1) == 4.0  # original untouched


class TestLinkTraffic:
    def test_merge_merges_both_classes(self):
        a = LinkTraffic()
        a.compare.add_edge(0, 1)
        b = LinkTraffic()
        b.update.add_edge(0, 1)
        a.merge(b)
        assert a.compare.total == 1
        assert a.update.total == 1


class TestSummary:
    def test_of_values(self):
        s = Summary.of([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3
        assert s.std == pytest.approx(1.0)

    def test_of_single_value(self):
        s = Summary.of([5.0])
        assert s.std == 0.0

    def test_skips_nans(self):
        s = Summary.of([1.0, float("nan"), 3.0])
        assert s.count == 2
        assert s.mean == 2.0

    def test_empty(self):
        assert math.isnan(Summary.of([]).mean)

    def test_mean_helper(self):
        assert mean([2.0, 4.0]) == 3.0
        assert math.isnan(mean([]))
