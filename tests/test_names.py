"""Three-level names and directory records (Clearinghouse substrate)."""

import pytest

from repro.nameservice.names import DomainId, Name
from repro.nameservice.records import (
    AddressRecord,
    AliasRecord,
    GroupRecord,
    record_kind,
)


class TestName:
    def test_parse_and_str_round_trip(self):
        name = Name.parse("CIN:PARC:printer-35")
        assert name.organization == "CIN"
        assert name.domain == "PARC"
        assert name.local == "printer-35"
        assert str(name) == "CIN:PARC:printer-35"

    def test_case_insensitive_equality(self):
        assert Name.parse("CIN:PARC:Alice") == Name.parse("cin:parc:alice")
        assert hash(Name.parse("CIN:PARC:Alice")) == hash(Name.parse("cin:parc:alice"))

    def test_case_preserved_for_display(self):
        assert str(Name.parse("CIN:PARC:Alice")) == "CIN:PARC:Alice"

    def test_domain_id_extraction(self):
        name = Name.parse("CIN:PARC:alice")
        assert name.domain_id == DomainId("cin", "parc")

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            Name.parse("CIN:PARC")
        with pytest.raises(ValueError):
            Name.parse("CIN:PARC:a:b")

    def test_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            Name("", "PARC", "x")
        with pytest.raises(ValueError):
            Name("CIN", "PA:RC", "x")
        with pytest.raises(ValueError):
            Name("CIN", "PARC", "-leading-dash")

    def test_allows_spaces_dots_dashes(self):
        Name("CIN", "PARC", "Mail Servers.v2-beta")


class TestDomainId:
    def test_parse(self):
        assert DomainId.parse("CIN:PARC") == DomainId("CIN", "PARC")
        with pytest.raises(ValueError):
            DomainId.parse("CIN")

    def test_name_builder(self):
        domain = DomainId("CIN", "PARC")
        assert domain.name("alice") == Name("CIN", "PARC", "alice")

    def test_usable_as_dict_key(self):
        d = {DomainId("CIN", "PARC"): 1}
        assert d[DomainId("cin", "parc")] == 1


class TestRecords:
    def test_address_record(self):
        record = AddressRecord("10.0.0.7", 520)
        assert str(record) == "10.0.0.7:520"
        assert record_kind(record) == "address"

    def test_address_validation(self):
        with pytest.raises(ValueError):
            AddressRecord("")
        with pytest.raises(ValueError):
            AddressRecord("10.0.0.7", port=70000)

    def test_alias_record(self):
        record = AliasRecord("CIN:PARC:alice")
        assert record_kind(record) == "alias"
        with pytest.raises(ValueError):
            AliasRecord("not-a-full-name")

    def test_group_record_membership(self):
        group = GroupRecord(frozenset({"CIN:PARC:alice"}))
        bigger = group.with_member("CIN:PARC:bob")
        assert "CIN:PARC:bob" in bigger
        assert "CIN:PARC:bob" not in group  # immutably extended
        assert len(bigger) == 2
        smaller = bigger.without_member("CIN:PARC:alice")
        assert "CIN:PARC:alice" not in smaller

    def test_group_validates_members(self):
        with pytest.raises(ValueError):
            GroupRecord(frozenset({"bogus"}))

    def test_record_kind_rejects_junk(self):
        with pytest.raises(TypeError):
            record_kind("string")
