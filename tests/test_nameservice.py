"""The Clearinghouse service end to end."""

import pytest

from repro.nameservice.names import DomainId
from repro.nameservice.records import AddressRecord, AliasRecord, GroupRecord
from repro.nameservice.service import Clearinghouse, DomainConfig
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.topology import builders
from repro.topology.graph import sites_only


@pytest.fixture
def service():
    ch = Clearinghouse(sites_only(12), seed=1)
    ch.create_domain("CIN:PARC", DomainConfig(replicas=range(12)))
    ch.create_domain("CIN:Webster", DomainConfig(replication=3))
    return ch


class TestDomainAdministration:
    def test_replica_sets(self, service):
        assert service.replicas_of(DomainId("CIN", "PARC")) == list(range(12))
        webster = service.replicas_of(DomainId("CIN", "Webster"))
        assert len(webster) == 3
        assert set(webster) <= set(range(12))

    def test_replication_sampling_is_deterministic(self):
        def build():
            ch = Clearinghouse(sites_only(20), seed=9)
            ch.create_domain("o:d", DomainConfig(replication=5))
            return ch.replicas_of(DomainId("o", "d"))

        assert build() == build()

    def test_duplicate_domain_rejected(self, service):
        with pytest.raises(ValueError):
            service.create_domain("CIN:PARC", DomainConfig(replication=2))

    def test_config_requires_exactly_one_spec(self):
        with pytest.raises(ValueError):
            DomainConfig()
        with pytest.raises(ValueError):
            DomainConfig(replicas=[1], replication=2)

    def test_unknown_replica_rejected(self):
        ch = Clearinghouse(sites_only(3), seed=0)
        with pytest.raises(ValueError):
            ch.create_domain("o:d", DomainConfig(replicas=[99]))

    def test_unknown_domain_raises(self, service):
        with pytest.raises(KeyError):
            service.lookup("no:such:name")


class TestBindLookup:
    def test_bind_then_lookup_at_entry_server(self, service):
        service.bind("CIN:PARC:printer-35", AddressRecord("10.0.7.12"), via=0)
        record = service.lookup("CIN:PARC:printer-35", at=0)
        assert record == AddressRecord("10.0.7.12")

    def test_remote_lookup_initially_stale_then_converges(self, service):
        service.bind("CIN:PARC:printer-35", AddressRecord("10.0.7.12"), via=0)
        assert service.lookup("CIN:PARC:printer-35", at=11) is None  # stale read
        service.run_until_consistent()
        assert service.lookup("CIN:PARC:printer-35", at=11) == AddressRecord(
            "10.0.7.12"
        )

    def test_bind_via_non_replica_forwards(self, service):
        webster = service.replicas_of(DomainId("CIN", "Webster"))
        outsider = next(s for s in range(12) if s not in webster)
        service.bind("CIN:Webster:gateway", AddressRecord("10.1.0.1"), via=outsider)
        service.run_until_consistent()
        for replica in webster:
            assert service.lookup("CIN:Webster:gateway", at=replica) is not None

    def test_overwrite_wins_by_timestamp(self, service):
        service.bind("CIN:PARC:alice", AddressRecord("10.0.0.1"), via=0)
        service.run_until_consistent()
        service.bind("CIN:PARC:alice", AddressRecord("10.0.0.2"), via=7)
        service.run_until_consistent()
        for server in range(12):
            assert service.lookup("CIN:PARC:alice", at=server) == AddressRecord(
                "10.0.0.2"
            )

    def test_domains_are_independent(self, service):
        service.bind("CIN:PARC:shared-name", AddressRecord("10.0.0.1"), via=0)
        service.run_until_consistent()
        # Same local name, different domain: unrelated binding.
        assert service.lookup(
            "CIN:Webster:shared-name",
            at=service.replicas_of(DomainId("CIN", "Webster"))[0],
        ) is None

    def test_list_domain(self, service):
        service.bind("CIN:PARC:a", AddressRecord("10.0.0.1"), via=0)
        service.bind("CIN:PARC:b", AddressRecord("10.0.0.2"), via=0)
        service.run_until_consistent()
        listing = service.list_domain("CIN:PARC", at=5)
        assert set(listing) == {"a", "b"}


class TestUnbind:
    def test_unbind_spreads_death_certificate(self, service):
        service.bind("CIN:PARC:gone", AddressRecord("10.0.0.9"), via=0)
        service.run_until_consistent()
        service.unbind("CIN:PARC:gone", via=4)
        service.run_until_consistent()
        for server in range(12):
            assert service.lookup("CIN:PARC:gone", at=server) is None

    def test_rebind_after_unbind(self, service):
        service.bind("CIN:PARC:x", AddressRecord("10.0.0.1"), via=0)
        service.run_until_consistent()
        service.unbind("CIN:PARC:x", via=0)
        service.run_until_consistent()
        service.bind("CIN:PARC:x", AddressRecord("10.0.0.2"), via=3)
        service.run_until_consistent()
        assert service.lookup("CIN:PARC:x", at=9) == AddressRecord("10.0.0.2")


class TestAliases:
    def test_resolve_follows_alias(self, service):
        service.bind("CIN:PARC:alice", AddressRecord("10.0.0.1"), via=0)
        service.bind("CIN:PARC:ali", AliasRecord("CIN:PARC:alice"), via=0)
        service.run_until_consistent()
        assert service.resolve("CIN:PARC:ali", at=3) == AddressRecord("10.0.0.1")

    def test_resolve_crosses_domains(self, service):
        webster = service.replicas_of(DomainId("CIN", "Webster"))
        service.bind("CIN:Webster:server-1", AddressRecord("10.1.0.5"), via=webster[0])
        service.bind(
            "CIN:PARC:webster-gw", AliasRecord("CIN:Webster:server-1"), via=0
        )
        service.run_until_consistent()
        assert service.resolve("CIN:PARC:webster-gw", at=0) == AddressRecord(
            "10.1.0.5"
        )

    def test_alias_loop_detected(self, service):
        service.bind("CIN:PARC:a", AliasRecord("CIN:PARC:b"), via=0)
        service.bind("CIN:PARC:b", AliasRecord("CIN:PARC:a"), via=0)
        service.run_until_consistent()
        with pytest.raises(ValueError):
            service.resolve("CIN:PARC:a", at=0)

    def test_dangling_alias_resolves_to_none(self, service):
        service.bind("CIN:PARC:dangling", AliasRecord("CIN:PARC:ghost"), via=0)
        service.run_until_consistent()
        assert service.resolve("CIN:PARC:dangling", at=0) is None


class TestGroups:
    def test_group_updates_last_writer_wins(self, service):
        group = GroupRecord(frozenset({"CIN:PARC:alice"}))
        service.bind("CIN:PARC:csl", group, via=0)
        service.run_until_consistent()
        current = service.lookup("CIN:PARC:csl", at=4)
        service.bind("CIN:PARC:csl", current.with_member("CIN:PARC:bob"), via=4)
        service.run_until_consistent()
        final = service.lookup("CIN:PARC:csl", at=0)
        assert final.members == frozenset({"CIN:PARC:alice", "CIN:PARC:bob"})


class TestTopologyAwareness:
    def test_nearest_replica_on_a_line(self):
        topo = builders.line(10)
        ch = Clearinghouse(topo, seed=0)
        ch.create_domain("o:d", DomainConfig(replicas=[0, 9]))
        domain = DomainId("o", "d")
        assert ch.nearest_replica(domain, near=2) == 0
        assert ch.nearest_replica(domain, near=7) == 9
        assert ch.nearest_replica(domain, near=9) == 9

    def test_custom_protocol_stack(self):
        ch = Clearinghouse(sites_only(8), seed=0)
        built = []

        def factory(replicas):
            protocol = AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL)
            )
            built.append(protocol)
            return [protocol]

        ch.create_domain("o:d", DomainConfig(replicas=range(8), protocols=factory))
        assert built
        ch.bind("o:d:k", AddressRecord("10.0.0.1"), via=0)
        ch.run_until_consistent()
        assert ch.lookup("o:d:k", at=7) == AddressRecord("10.0.0.1")

    def test_single_replica_domain_needs_no_protocols(self):
        ch = Clearinghouse(sites_only(5), seed=0)
        replicas = ch.create_domain("o:solo", DomainConfig(replication=1))
        ch.bind("o:solo:k", AddressRecord("10.0.0.1"))
        assert ch.lookup("o:solo:k") == AddressRecord("10.0.0.1")
        assert ch.consistent()

    def test_domain_created_after_cycles_starts_in_step(self):
        ch = Clearinghouse(sites_only(6), seed=0)
        ch.create_domain("o:first", DomainConfig(replicas=range(6)))
        ch.run_cycles(5)
        ch.create_domain("o:late", DomainConfig(replicas=range(6)))
        ch.bind("o:late:k", AddressRecord("10.0.0.1"), via=0)
        ch.run_until_consistent()
        assert ch.lookup("o:late:k", at=5) == AddressRecord("10.0.0.1")


class TestDomainMembership:
    def test_expand_domain_new_replica_catches_up(self, service):
        webster = service.replicas_of(DomainId("CIN", "Webster"))
        service.bind("CIN:Webster:gw", AddressRecord("10.1.0.9"), via=webster[0])
        service.run_until_consistent()
        newcomer = next(s for s in range(12) if s not in webster)
        service.expand_domain("CIN:Webster", newcomer)
        assert service.lookup("CIN:Webster:gw", at=newcomer) is None
        service.run_until_consistent()
        assert service.lookup("CIN:Webster:gw", at=newcomer) == AddressRecord(
            "10.1.0.9"
        )
        assert newcomer in service.replicas_of(DomainId("CIN", "Webster"))

    def test_expand_rejects_duplicates_and_strangers(self, service):
        webster = service.replicas_of(DomainId("CIN", "Webster"))
        with pytest.raises(ValueError):
            service.expand_domain("CIN:Webster", webster[0])
        with pytest.raises(ValueError):
            service.expand_domain("CIN:Webster", 999)

    def test_contract_domain(self, service):
        webster = service.replicas_of(DomainId("CIN", "Webster"))
        service.bind("CIN:Webster:k", AddressRecord("10.1.0.2"), via=webster[0])
        service.run_until_consistent()
        departing = webster[-1]
        service.contract_domain("CIN:Webster", departing)
        remaining = service.replicas_of(DomainId("CIN", "Webster"))
        assert departing not in remaining
        # The remaining replicas still serve the data consistently.
        service.bind("CIN:Webster:k2", AddressRecord("10.1.0.3"), via=remaining[0])
        service.run_until_consistent()
        assert service.lookup("CIN:Webster:k2", at=remaining[-1]) is not None

    def test_contract_rejects_non_replica(self, service):
        webster = service.replicas_of(DomainId("CIN", "Webster"))
        outsider = next(s for s in range(12) if s not in webster)
        with pytest.raises(ValueError):
            service.contract_domain("CIN:Webster", outsider)

    def test_migrate_domain_across_servers(self, service):
        """Expand then contract: a domain walks to a new replica set
        without ever losing data."""
        domain = DomainId("CIN", "Webster")
        original = service.replicas_of(domain)
        service.bind("CIN:Webster:precious", AddressRecord("10.1.0.7"),
                     via=original[0])
        service.run_until_consistent()
        targets = [s for s in range(12) if s not in original][:3]
        for server in targets:
            service.expand_domain(domain, server)
            service.run_until_consistent()
        for server in original:
            service.contract_domain(domain, server)
        service.run_until_consistent()
        assert sorted(service.replicas_of(domain)) == sorted(targets)
        for server in targets:
            assert service.lookup("CIN:Webster:precious", at=server) == AddressRecord(
                "10.1.0.7"
            )
