"""The static roster: parsing, validation, distances, selectors.

(The simulator's dynamic-membership protocol is covered separately in
``test_membership.py``; this file is about the live runtime's config.)
"""

import random

import pytest

from repro.net.membership import (
    Membership,
    MembershipDistances,
    MembershipError,
    PeerInfo,
)
from repro.topology.spatial import SortedListSelector, UniformSelector


def roster(n: int = 4) -> Membership:
    return Membership.localhost([9100 + i for i in range(n)])


class TestRoster:
    def test_basic_access(self):
        m = roster(3)
        assert len(m) == 3
        assert m.node_ids == [0, 1, 2]
        assert 2 in m and 7 not in m
        assert m.get(1).port == 9101
        assert [p.node_id for p in m.others(1)] == [0, 2]

    def test_unknown_node_rejected(self):
        with pytest.raises(MembershipError, match="not in the roster"):
            roster().get(99)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(MembershipError, match="duplicate"):
            Membership([PeerInfo(0, "h", 1), PeerInfo(0, "h", 2)])

    def test_negative_ids_rejected(self):
        with pytest.raises(MembershipError, match="negative"):
            Membership([PeerInfo(-1, "h", 1)])

    def test_empty_roster_rejected(self):
        with pytest.raises(MembershipError):
            Membership([])

    def test_distance_floor_is_one(self):
        m = Membership(
            [
                PeerInfo(0, "h", 1, position=0.0),
                PeerInfo(1, "h", 2, position=0.25),
                PeerInfo(2, "h", 3, position=5.0),
            ]
        )
        assert m.distance(0, 0) == 0.0
        assert m.distance(0, 1) == 1.0   # closer than 1 snaps to 1
        assert m.distance(0, 2) == 5.0
        assert m.distance(2, 0) == 5.0


class TestPayload:
    def test_round_trip(self):
        m = roster(3)
        again = Membership.from_payload(m.to_payload())
        assert again.node_ids == m.node_ids
        assert [p.address for p in again] == [p.address for p in m]
        assert [p.position for p in again] == [p.position for p in m]

    def test_position_defaults_to_index(self):
        m = Membership.from_payload(
            {
                "version": 1,
                "nodes": [
                    {"id": 5, "host": "a", "port": 1},
                    {"id": 6, "host": "b", "port": 2},
                ],
            }
        )
        assert m.get(5).position == 0.0
        assert m.get(6).position == 1.0

    @pytest.mark.parametrize(
        "payload, pattern",
        [
            ([1, 2], "object"),
            ({"version": 2, "nodes": []}, "version"),
            ({"version": 1}, "nodes"),
            ({"version": 1, "nodes": []}, "nodes"),
            ({"version": 1, "nodes": [{"id": 0, "host": "h"}]}, "port"),
            ({"version": 1, "nodes": [{"id": True, "host": "h", "port": 1}]}, "integer"),
            ({"version": 1, "nodes": [{"id": 0, "host": "", "port": 1}]}, "host"),
            ({"version": 1, "nodes": [{"id": 0, "host": "h", "port": 0}]}, "port"),
            ({"version": 1, "nodes": [{"id": 0, "host": "h", "port": 70000}]}, "port"),
            (
                {"version": 1, "nodes": [{"id": 0, "host": "h", "port": 1, "position": "x"}]},
                "position",
            ),
        ],
    )
    def test_malformed_payloads(self, payload, pattern):
        with pytest.raises(MembershipError, match=pattern):
            Membership.from_payload(payload)


class TestFiles:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "roster.json"
        roster(3).dump(path)
        assert Membership.load(path).node_ids == [0, 1, 2]

    def test_toml(self, tmp_path):
        path = tmp_path / "roster.toml"
        path.write_text(
            'version = 1\n'
            '[[nodes]]\nid = 0\nhost = "127.0.0.1"\nport = 9100\n'
            '[[nodes]]\nid = 1\nhost = "127.0.0.1"\nport = 9101\nposition = 4.0\n'
        )
        m = Membership.load(path)
        assert m.node_ids == [0, 1]
        assert m.get(1).position == 4.0

    def test_missing_file(self, tmp_path):
        with pytest.raises(MembershipError, match="cannot read"):
            Membership.load(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(MembershipError, match="bad JSON"):
            Membership.load(path)

    def test_bad_toml(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("version = = 1")
        with pytest.raises(MembershipError, match="bad TOML"):
            Membership.load(path)


class TestSelectors:
    def test_uniform(self):
        selector = roster(4).selector("uniform")
        assert isinstance(selector, UniformSelector)
        rng = random.Random(7)
        picks = {selector.choose(0, rng) for __ in range(200)}
        assert picks == {1, 2, 3}

    def test_spatial_favors_near_nodes(self):
        selector = roster(16).selector("spatial:2.0")
        assert isinstance(selector, SortedListSelector)
        rng = random.Random(7)
        picks = [selector.choose(0, rng) for __ in range(2000)]
        near = sum(1 for p in picks if p <= 3)
        far = sum(1 for p in picks if p >= 12)
        assert 0 not in picks
        assert near > far

    def test_bad_specs(self):
        with pytest.raises(MembershipError, match="unknown selector"):
            roster().selector("nearest")
        with pytest.raises(MembershipError, match="spatial exponent"):
            roster().selector("spatial:wat")

    def test_single_node_roster_cannot_select(self):
        with pytest.raises(MembershipError, match="two nodes"):
            Membership([PeerInfo(0, "h", 1)]).selector("uniform")


class TestMembershipDistances:
    def test_sorted_view_and_q(self):
        distances = MembershipDistances(roster(5))
        others, dists = distances.others_by_distance(2)
        assert set(others) == {0, 1, 3, 4}
        assert dists == sorted(dists)
        assert dists[0] == 1.0
        # Q_s(d): nodes within distance d (eq 3.1.1 denominator).
        assert distances.q(2, 1.0) == 2    # nodes 1 and 3
        assert distances.q(2, 2.0) == 4
        assert distances.q(2, 0.5) == 0
