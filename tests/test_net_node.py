"""GossipNode behavior over real localhost TCP.

The periodic loops are parked (huge intervals) so every exchange here
is driven explicitly with ``run_anti_entropy_once`` /
``run_rumor_once`` — the network is real, the timing deterministic.
"""

import asyncio
import contextlib
import socket
from typing import List

import pytest

from repro.core.serialize import encode_updates
from repro.net.membership import Membership
from repro.net.node import GossipNode, NodeConfig
from repro.net.peer import Peer, RetryPolicy
from repro.net.wire import Message, MessageType
from repro.obs.events import EventKind, RingBufferSink
from repro.obs.spans import SpanContext, trace_id_of
from repro.protocols.base import ExchangeMode

#: Loops effectively disabled; fast failure detection.
QUIET = dict(
    anti_entropy_interval=3600.0,
    rumor_interval=3600.0,
    retry=RetryPolicy(connect_timeout=0.5, io_timeout=1.0, attempts=1),
)


@contextlib.asynccontextmanager
async def cluster(n: int = 2, **overrides):
    config = NodeConfig(**{**QUIET, **overrides})
    socks = []
    for __ in range(n):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        socks.append(sock)
    membership = Membership.localhost([s.getsockname()[1] for s in socks])
    nodes: List[GossipNode] = []
    try:
        for node_id, sock in enumerate(socks):
            node = GossipNode(node_id, membership, config)
            await node.start(sock=sock)
            nodes.append(node)
        yield nodes
    finally:
        for node in nodes:
            await node.stop()


class TestAntiEntropy:
    def test_push_pull_converges_both_ways(self):
        async def scenario():
            async with cluster(2) as (a, b):
                a.inject("from-a", 1)
                b.inject("from-b", 2)
                assert await a.run_anti_entropy_once()
                return (
                    a.store.agrees_with(b.store),
                    a.store.get("from-b"),
                    b.store.get("from-a"),
                    a.stats.exchanges,
                    b.stats.updates_absorbed,
                    a.stats.updates_absorbed,
                )

        agrees, at_a, at_b, exchanges, b_absorbed, a_absorbed = asyncio.run(scenario())
        assert agrees
        assert at_a == 2 and at_b == 1
        assert exchanges == 1
        assert b_absorbed == 1 and a_absorbed == 1

    def test_push_only_sends_but_never_fetches(self):
        async def scenario():
            async with cluster(2, mode=ExchangeMode.PUSH) as (a, b):
                a.inject("mine", 1)
                b.inject("theirs", 2)
                assert await a.run_anti_entropy_once()
                return b.store.get("mine"), a.store.get("theirs")

        pushed, pulled = asyncio.run(scenario())
        assert pushed == 1
        assert pulled is None   # push mode must not pull

    def test_pull_only_fetches_but_never_sends(self):
        async def scenario():
            async with cluster(2, mode=ExchangeMode.PULL) as (a, b):
                a.inject("mine", 1)
                b.inject("theirs", 2)
                assert await a.run_anti_entropy_once()
                return a.store.get("theirs"), b.store.get("mine")

        pulled, pushed = asyncio.run(scenario())
        assert pulled == 2
        assert pushed is None   # the digest offer must not be applied

    def test_death_certificate_propagates(self):
        async def scenario():
            async with cluster(2) as (a, b):
                a.inject("doomed", 1)
                await a.run_anti_entropy_once()
                a.delete("doomed")
                await a.run_anti_entropy_once()
                return a.store.agrees_with(b.store), b.store.get("doomed")

        agrees, value = asyncio.run(scenario())
        assert agrees
        assert value is None

    def test_checksum_strategy_settles_without_full_compare(self):
        async def scenario():
            async with cluster(2, strategy="checksum", tau=60.0) as (a, b):
                a.inject("k", "v")
                assert await a.run_anti_entropy_once()
                return (
                    a.store.agrees_with(b.store),
                    a.stats.checksum_successes,
                    b.store.get("k"),
                )

        agrees, successes, value = asyncio.run(scenario())
        assert agrees
        # The recent-update list alone reconciled the stores: no full
        # table was shipped (Section 1.3's whole point).
        assert successes == 1
        assert value == "v"

    def test_dead_partner_is_a_counted_failure_not_a_crash(self):
        async def scenario():
            async with cluster(2, hunt_limit=0) as (a, b):
                await b.stop()
                a.inject("k", 1)
                ran = await a.run_anti_entropy_once()
                return ran, a.stats.peer_failures

        ran, failures = asyncio.run(scenario())
        assert ran is False
        assert failures == 1

    def test_busy_partner_is_refused_and_counted(self):
        async def scenario():
            async with cluster(2, hunt_limit=0, connection_limit=1) as (a, b):
                b._inbound_active = 1   # simulate a saturated server
                a.inject("k", 1)
                ran = await a.run_anti_entropy_once()
                return ran, a.stats.rejections_out, b.stats.rejections_in

        ran, out, inn = asyncio.run(scenario())
        assert ran is False
        assert out == 1 and inn == 1


class TestRumors:
    def test_rumor_spreads_and_infects_the_receiver(self):
        async def scenario():
            async with cluster(2) as (a, b):
                a.inject("hot", 1)
                assert a.hot_rumor_count == 1
                assert await a.run_rumor_once()
                return b.store.get("hot"), b.hot_rumor_count, a.hot_rumor_count

        value, b_hot, a_hot = asyncio.run(scenario())
        assert value == 1
        assert b_hot == 1    # receiving news makes the receiver infectious
        assert a_hot == 1    # a useful push keeps the rumor hot

    def test_feedback_counter_deactivates_rumor(self):
        async def scenario():
            async with cluster(2, rumor_k=1) as (a, b):
                a.inject("hot", 1)
                await a.run_rumor_once()   # news: stays hot
                await a.run_rumor_once()   # not news: counter hits k
                return a.hot_rumor_count

        assert asyncio.run(scenario()) == 0

    def test_no_hot_rumors_means_no_traffic(self):
        async def scenario():
            async with cluster(2) as (a, b):
                ran = await a.run_rumor_once()
                return ran, a.stats.frames_sent_total

        ran, frames = asyncio.run(scenario())
        assert ran is False
        assert frames == 0


class TestWireClients:
    def test_mail_injection_over_tcp(self):
        async def scenario():
            async with cluster(2) as (a, b):
                client = Peer(a.info, RetryPolicy(attempts=1))
                reply = await client.call(
                    Message(MessageType.MAIL, sender=-1, payload={"key": "k", "value": 7})
                )
                await client.close()
                return reply, a.store.get("k"), a.hot_rumor_count

        reply, value, hot = asyncio.run(scenario())
        assert reply.payload["applied"] is True
        assert "timestamp" in reply.payload
        assert value == 7
        assert hot == 1   # a client write starts spreading as a rumor

    def test_checksum_probe_reports_status(self):
        async def scenario():
            async with cluster(2) as (a, b):
                a.inject("k", 1)
                client = Peer(a.info, RetryPolicy(attempts=1))
                reply = await client.call(
                    Message(MessageType.CHECKSUM, sender=-1, payload={"probe": True})
                )
                await client.close()
                return reply.payload, a.store.checksum

        payload, checksum = asyncio.run(scenario())
        assert payload["node"] == 0
        assert payload["entries"] == 1
        assert payload["checksum"] == checksum
        assert "k" in payload["received"]

    def test_malformed_payload_gets_error_ack_not_a_crash(self):
        async def scenario():
            async with cluster(2) as (a, b):
                client = Peer(a.info, RetryPolicy(attempts=1))
                reply = await client.call(
                    Message(
                        MessageType.PUSH,
                        sender=-1,
                        payload={"mode": "sideways", "updates": []},
                    )
                )
                await client.close()
                return reply

        reply = asyncio.run(scenario())
        assert reply.type is MessageType.ACK
        assert "error" in reply.payload


class TestNodeConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NodeConfig(anti_entropy_interval=0)
        with pytest.raises(ValueError):
            NodeConfig(strategy="telepathy")
        with pytest.raises(ValueError):
            NodeConfig(tau=0)
        with pytest.raises(ValueError):
            NodeConfig(rumor_k=0)
        with pytest.raises(ValueError):
            NodeConfig(connection_limit=0)
        with pytest.raises(ValueError):
            NodeConfig(hunt_limit=-1)

    def test_double_start_rejected(self):
        async def scenario():
            async with cluster(2) as (a, b):
                with pytest.raises(RuntimeError, match="already running"):
                    await a.start()

        asyncio.run(scenario())


class TestShutdown:
    def test_stop_survives_a_swallowed_cancellation(self):
        """On 3.11 a wait_for that completes in the same event-loop step
        as a cancel request eats the CancelledError (bpo-42130), leaving
        the gossip loop running with the cancel consumed.  ``stop()``
        must keep cancelling until the task actually dies, never hang."""

        async def scenario():
            async with cluster(2) as (a, b):
                swallowed = asyncio.Event()

                async def stubborn():
                    try:
                        await asyncio.Event().wait()
                    except asyncio.CancelledError:
                        swallowed.set()  # simulate the lost cancellation
                    await asyncio.Event().wait()

                a._tasks.append(asyncio.create_task(stubborn()))
                await asyncio.wait_for(a.stop(), timeout=5.0)
                assert swallowed.is_set()
                assert all(task.done() for task in a._tasks) or a._tasks == []

        asyncio.run(scenario())

    def test_periodic_honors_a_consumed_cancel_request(self):
        """The loop re-checks ``task.cancelling()`` each iteration, so a
        cancellation swallowed inside one step ends the loop at the next."""

        async def scenario():
            async with cluster(2) as (a, b):
                entered = asyncio.Event()

                async def step():
                    entered.set()
                    try:
                        await asyncio.Event().wait()  # cancel lands here
                    except asyncio.CancelledError:
                        pass  # the bpo-42130 stand-in: the error is eaten

                task = asyncio.create_task(a._periodic(0.001, step))
                await asyncio.wait_for(entered.wait(), timeout=5.0)
                task.cancel()
                # The step swallowed the error, yet the loop must still
                # exit — the guard sees cancelling() > 0 next iteration.
                with contextlib.suppress(asyncio.CancelledError):
                    await asyncio.wait_for(task, timeout=5.0)
                assert task.done()

        asyncio.run(scenario())

    def test_periodic_runs_on_py310_task_api(self, monkeypatch):
        """``Task.cancelling()`` is 3.11+ only.  On 3.10 the loops must
        still gossip — the old unguarded call raised AttributeError on
        the first iteration, and ``stop()`` retrieved (and thereby hid)
        the exception, so nodes silently never ran a round."""

        class Py310TaskProxy:
            """The 3.10 Task surface: everything but ``cancelling()``."""

            def __init__(self, task):
                self._task = task

            def __getattr__(self, name):
                if name == "cancelling":
                    raise AttributeError(name)
                return getattr(self._task, name)

        async def scenario():
            async with cluster(2) as (a, b):
                real_current_task = asyncio.current_task

                def py310_current_task():
                    task = real_current_task()
                    return None if task is None else Py310TaskProxy(task)

                monkeypatch.setattr(
                    "repro.net.node.asyncio.current_task", py310_current_task
                )
                steps = 0
                stepped = asyncio.Event()

                async def step():
                    nonlocal steps
                    steps += 1
                    stepped.set()

                task = asyncio.create_task(a._periodic(0.001, step))
                await asyncio.wait_for(stepped.wait(), timeout=5.0)
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await asyncio.wait_for(task, timeout=5.0)
                return steps, task.cancelled()

        steps, cancelled = asyncio.run(scenario())
        assert steps >= 1
        assert cancelled  # ended by the cancel, not a swallowed error


class TestSpanContextMapping:
    def test_duplicate_key_frame_maps_contexts_by_trace(self):
        """One PUSH frame may carry two versions of the same key; each
        applied version must get its own trace context, not whichever
        context last claimed the bare key."""

        async def scenario():
            async with cluster(2) as (a, b):
                u1 = a.store.update("k", 1)
                u2 = a.store.update("k", 2)
                sink = b.bus.add_sink(RingBufferSink())
                payload = {
                    "mode": ExchangeMode.PUSH.value,
                    "updates": encode_updates([u1, u2]),
                    "spans": [
                        SpanContext(trace=trace_id_of(u1), hop=5).to_wire(),
                        SpanContext(trace=trace_id_of(u2), hop=0).to_wire(),
                    ],
                }
                b._handle(Message(MessageType.PUSH, sender=0, payload=payload))
                hops = {
                    event.payload["trace"]: event.payload["hop"]
                    for event in sink.of_kind(EventKind.DELIVERY_SPAN)
                }
                return trace_id_of(u1), trace_id_of(u2), hops

        t1, t2, hops = asyncio.run(scenario())
        assert hops[t1] == 6  # u1's own context (5) + 1, never u2's
        assert hops[t2] == 1
