"""Live introspection: STATUS frames over real sockets, the
``repro status`` client, and event-driven report assembly."""

import asyncio
import json

from repro.net.node import NodeConfig
from repro.net.peer import RetryPolicy
from repro.net.runner import LiveCluster, live_demo, query_status
from repro.obs.convergence import ConvergenceTracker
from repro.obs.events import EventKind, RingBufferSink, read_trace

FAST = NodeConfig(
    anti_entropy_interval=0.05,
    rumor_interval=0.02,
    retry=RetryPolicy(connect_timeout=1.0, io_timeout=2.0, attempts=2),
)

BOUND_SECONDS = 15.0
KEY = "printer:bldg-35"


class TestStatusOverTheWire:
    def test_status_reply_carries_census_and_metrics(self):
        async def scenario():
            cluster = await LiveCluster.launch(3, FAST)
            try:
                await cluster.inject(0, KEY, "10.0.7.12")
                await cluster.wait_converged(KEY, timeout=BOUND_SECONDS)
                return await cluster.status_all()
            finally:
                await cluster.stop()

        statuses = asyncio.run(scenario())
        assert sorted(statuses) == [0, 1, 2]
        for node_id, payload in statuses.items():
            assert payload["node"] == node_id
            assert payload["roster_size"] == 3
            assert payload["uptime_seconds"] >= 0.0
            assert payload["entries"] == 1
            assert KEY in payload["received"]
            census = payload["census"]
            assert census["infective"] + census["removed"] == payload["entries"]
            metrics = payload["metrics"]
            assert metrics["repro_exchanges_total"]["type"] == "counter"
            # STATUS payloads must survive JSON (they cross the wire).
            json.dumps(payload)

    def test_query_status_from_a_roster_file(self, tmp_path):
        roster = tmp_path / "roster.json"

        async def scenario():
            cluster = await LiveCluster.launch(2, FAST)
            try:
                cluster.membership.dump(roster)
                await cluster.inject(1, KEY, "x")
                return await query_status(str(roster), 1)
            finally:
                await cluster.stop()

        payload = asyncio.run(scenario())
        assert payload["node"] == 1
        assert KEY in payload["received"]
        assert payload["config"]["mode"] == FAST.mode.value


class TestEventDrivenReport:
    def test_trace_replay_reproduces_the_printed_report(self, tmp_path):
        """Acceptance criterion: residue / t_ave / t_last recomputed
        from the JSONL trace equal the report's values exactly."""
        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        report = asyncio.run(
            live_demo(
                nodes=3,
                config=FAST,
                timeout=BOUND_SECONDS,
                trace_file=str(trace),
                metrics_file=str(metrics),
            )
        )
        assert report.converged

        replayed = ConvergenceTracker.from_events(read_trace(trace))
        assert replayed.n == 3 and replayed.key == KEY
        assert replayed.residue == report.residue
        assert replayed.t_ave == report.t_ave
        assert replayed.t_last == report.t_last
        assert replayed.traffic_per_site == report.updates_per_site
        for row in report.nodes:
            assert replayed.delay_of(row.node_id) == row.receipt_delay

        blob = json.loads(metrics.read_text())
        assert sorted(blob) == ["0", "1", "2"]
        assert blob["0"]["metrics"]["repro_updates_shipped_total"]["type"] == "counter"

    def test_report_to_dict_is_json_safe(self):
        report = asyncio.run(live_demo(nodes=3, config=FAST, timeout=BOUND_SECONDS))
        blob = json.loads(json.dumps(report.to_dict()))
        assert blob["n"] == 3
        assert blob["converged"] is True
        assert isinstance(blob["nodes"], list) and len(blob["nodes"]) == 3
        assert {"node_id", "entries", "receipt_delay"} <= set(blob["nodes"][0])

    def test_cluster_bus_streams_exchange_events(self):
        async def scenario():
            sink = RingBufferSink()
            cluster = await LiveCluster.launch(3, FAST)
            cluster.bus.add_sink(sink)
            try:
                await cluster.inject(0, KEY, "x")
                await cluster.wait_converged(KEY, timeout=BOUND_SECONDS)
            finally:
                await cluster.stop()
            return sink

        sink = asyncio.run(scenario())
        injected = sink.of_kind(EventKind.UPDATE_INJECTED)
        assert [e.node for e in injected] == [0]
        assert injected[0].payload["key"] == KEY
        news = sink.of_kind(EventKind.NEWS_RECEIVED)
        assert {e.node for e in news} == {0, 1, 2}
        assert sink.of_kind(EventKind.EXCHANGE_SETTLED), "no settled exchanges seen"
