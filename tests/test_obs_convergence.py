"""ConvergenceTracker: the shared residue / traffic / delay math,
fed directly, from a bus, and from a replayed JSONL trace."""

import math

import pytest

from repro.obs.convergence import ConvergenceTracker
from repro.obs.events import (
    HARNESS_NODE,
    EventBus,
    EventKind,
    JsonlTraceWriter,
    read_trace,
)


class TestDirectRecording:
    def test_paper_observables(self):
        tracker = ConvergenceTracker(n=4, injection_time=10.0)
        tracker.record_receipt(0, 10.0)
        tracker.record_receipt(1, 12.0)
        tracker.record_receipt(2, 16.0)
        tracker.record_update_send(8)
        assert tracker.infected == 3
        assert tracker.residue == pytest.approx(0.25)
        assert tracker.t_ave == pytest.approx((0.0 + 2.0 + 6.0) / 3)
        assert tracker.t_last == pytest.approx(6.0)
        assert tracker.traffic_per_site == pytest.approx(2.0)
        assert not tracker.complete
        assert tracker.delay_of(1) == pytest.approx(2.0)
        assert tracker.delay_of(3) is None

    def test_first_receipt_wins(self):
        tracker = ConvergenceTracker(n=2)
        tracker.record_receipt(0, 1.0)
        tracker.record_receipt(0, 5.0)
        assert tracker.receipt_times[0] == 1.0

    def test_empty_tracker_has_nan_delays(self):
        tracker = ConvergenceTracker(n=3)
        assert math.isnan(tracker.t_ave) and math.isnan(tracker.t_last)
        assert tracker.residue == 1.0
        report = tracker.report().to_dict()
        assert report["t_ave"] is None and report["t_last"] is None

    def test_zero_population_rejected(self):
        with pytest.raises(ValueError):
            ConvergenceTracker(n=0)


class TestEventStream:
    def test_tracker_as_a_bus_sink(self):
        clock = iter(float(t) for t in range(100))
        bus = EventBus(clock=lambda: next(clock))
        tracker = ConvergenceTracker(n=3, key="k")
        bus.add_sink(tracker.observe)

        bus.emit(EventKind.UPDATE_INJECTED, node=0, key="k")        # t=0
        bus.emit(EventKind.NEWS_RECEIVED, node=1, key="k")          # t=1
        bus.emit(EventKind.NEWS_RECEIVED, node=1, key="other")      # filtered
        bus.emit(EventKind.EXCHANGE_SETTLED, node=0, partner=1,
                 shipped=2, received=1)
        bus.emit(EventKind.RUMOR_SENT, node=1, partner=2, shipped=1)
        bus.emit(EventKind.REJECTION, node=2, direction="out")
        bus.emit(EventKind.REJECTION, node=1, direction="in")       # dedup
        bus.emit(EventKind.NEWS_RECEIVED, node=2, key="k")          # t=7

        assert tracker.injection_time == 0.0     # adopted from the injection
        assert tracker.infected == 3 and tracker.complete
        assert tracker.t_last == pytest.approx(7.0)
        assert tracker.update_sends == 4         # 2+1 settled, 1 rumor
        assert tracker.comparisons == 1
        assert tracker.rejected_connections == 1

    def test_from_events_uses_run_started_defaults(self):
        clock = iter(float(t) for t in range(100))
        bus = EventBus(clock=lambda: next(clock))
        events = []
        bus.add_sink(events.append)
        bus.emit(EventKind.RUN_STARTED, node=HARNESS_NODE, n=5, key="k")
        bus.emit(EventKind.UPDATE_INJECTED, node=0, key="k")
        bus.emit(EventKind.NEWS_RECEIVED, node=3, key="k")
        tracker = ConvergenceTracker.from_events(events)
        assert tracker.n == 5 and tracker.key == "k"
        assert tracker.infected == 2
        assert tracker.residue == pytest.approx(0.6)

    def test_from_events_without_n_anywhere_raises(self):
        with pytest.raises(ValueError):
            ConvergenceTracker.from_events([])


class TestTraceRecompute:
    def test_jsonl_round_trip_matches_the_live_tracker(self, tmp_path):
        """The acceptance property: a trace replay reproduces the run's
        report exactly (same tracker math, same events)."""
        path = tmp_path / "run.jsonl"
        clock = iter(float(t) for t in range(100))
        bus = EventBus(clock=lambda: next(clock))
        live = ConvergenceTracker(n=4, key="k")
        bus.add_sink(live.observe)
        with JsonlTraceWriter(path) as writer:
            bus.add_sink(writer)
            bus.emit(EventKind.RUN_STARTED, node=HARNESS_NODE, n=4, key="k")
            bus.emit(EventKind.UPDATE_INJECTED, node=0, key="k")
            bus.emit(EventKind.EXCHANGE_SETTLED, node=0, partner=2,
                     shipped=1, received=0)
            bus.emit(EventKind.NEWS_RECEIVED, node=2, key="k")
            bus.emit(EventKind.RUMOR_SENT, node=2, partner=3, shipped=1)
            bus.emit(EventKind.NEWS_RECEIVED, node=3, key="k")
        replayed = ConvergenceTracker.from_events(read_trace(path))
        assert replayed.report() == live.report()
        assert replayed.t_ave == pytest.approx((0.0 + 2.0 + 4.0) / 3)
        assert replayed.update_sends == 2
        assert replayed.residue == pytest.approx(0.25)
