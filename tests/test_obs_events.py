"""Event bus: ordering, sinks, ring buffer, and JSONL round-trips."""

import pytest

from repro.obs.events import (
    HARNESS_NODE,
    Event,
    EventBus,
    EventKind,
    JsonlTraceWriter,
    RingBufferSink,
    TraceError,
    read_trace,
)


def make_bus(start: float = 0.0) -> EventBus:
    """A bus with a deterministic clock: 0, 1, 2, ..."""
    counter = iter(range(10_000))
    return EventBus(clock=lambda: float(next(counter)) + start)


class TestEventBus:
    def test_emit_without_sinks_is_a_no_op(self):
        bus = make_bus()
        assert not bus.active
        assert bus.emit(EventKind.UPDATE_INJECTED, node=1, key="k") is None

    def test_emit_delivers_to_every_sink(self):
        bus = make_bus()
        seen_a, seen_b = [], []
        bus.add_sink(seen_a.append)
        bus.add_sink(seen_b.append)
        event = bus.emit(EventKind.NEWS_RECEIVED, node=3, key="k")
        assert seen_a == [event] and seen_b == [event]
        assert event.node == 3
        assert event.payload == {"key": "k"}

    def test_seq_is_monotonic_and_totally_orders_events(self):
        bus = make_bus()
        sink = RingBufferSink()
        bus.add_sink(sink)
        for i in range(5):
            bus.emit(EventKind.CYCLE_COMPLETED, cycle=i)
        seqs = [event.seq for event in sink.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 5

    def test_clock_stamps_events_unless_time_given(self):
        bus = make_bus(start=100.0)
        sink = RingBufferSink()
        bus.add_sink(sink)
        bus.emit(EventKind.RUMOR_HOT, node=0, key="k")
        bus.emit(EventKind.RUMOR_DEAD, node=0, time=42.5, key="k")
        stamped, explicit = sink.events
        assert stamped.time == 100.0
        assert explicit.time == 42.5

    def test_remove_sink_stops_delivery(self):
        bus = make_bus()
        seen = []
        bus.add_sink(seen.append)
        bus.remove_sink(seen.append)
        bus.emit(EventKind.CENSUS, cycle=1)
        assert seen == [] and not bus.active

    def test_failing_sink_does_not_starve_the_others(self):
        bus = make_bus()
        seen = []

        def bad(event):
            raise RuntimeError("boom")

        bus.add_sink(bad)
        bus.add_sink(seen.append)
        with pytest.raises(RuntimeError):
            bus.emit(EventKind.CHECKSUM_HIT, node=1, partner=2)
        assert len(seen) == 1  # the healthy sink still got the event

    def test_default_node_is_the_harness(self):
        bus = make_bus()
        sink = RingBufferSink()
        bus.add_sink(sink)
        bus.emit(EventKind.RUN_STARTED, n=8)
        assert sink.events[0].node == HARNESS_NODE


class TestRingBufferSink:
    def test_capacity_drops_oldest_and_counts_them(self):
        bus = make_bus()
        sink = RingBufferSink(capacity=3)
        bus.add_sink(sink)
        for i in range(5):
            bus.emit(EventKind.CYCLE_COMPLETED, cycle=i)
        assert sink.seen == 5
        assert sink.dropped == 2
        assert [e.payload["cycle"] for e in sink.events] == [2, 3, 4]

    def test_of_kind_filters(self):
        bus = make_bus()
        sink = RingBufferSink()
        bus.add_sink(sink)
        bus.emit(EventKind.RUMOR_HOT, node=0, key="a")
        bus.emit(EventKind.CENSUS, cycle=1)
        bus.emit(EventKind.RUMOR_HOT, node=1, key="b")
        hot = sink.of_kind(EventKind.RUMOR_HOT)
        assert [e.node for e in hot] == [0, 1]


class TestEventSerialization:
    def test_round_trip_preserves_everything(self):
        event = Event(
            kind=EventKind.EXCHANGE_SETTLED,
            time=12.5,
            node=3,
            seq=7,
            payload={"partner": 4, "shipped": 2, "received": 1},
        )
        assert Event.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(TraceError):
            Event.from_dict({"seq": 0, "t": 0.0, "kind": "nope", "node": 1})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(TraceError):
            Event.from_dict([1, 2, 3])


class TestJsonlTrace:
    def test_write_then_read_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = make_bus()
        with JsonlTraceWriter(path) as writer:
            bus.add_sink(writer)
            bus.emit(EventKind.RUN_STARTED, n=4, key="k")
            bus.emit(EventKind.UPDATE_INJECTED, node=0, key="k", deletion=False)
            bus.emit(EventKind.NEWS_RECEIVED, node=1, key="k")
            assert writer.written == 3
        replayed = list(read_trace(path))
        assert [e.kind for e in replayed] == [
            EventKind.RUN_STARTED,
            EventKind.UPDATE_INJECTED,
            EventKind.NEWS_RECEIVED,
        ]
        assert replayed[1].payload == {"key": "k", "deletion": False}
        assert [e.seq for e in replayed] == sorted(e.seq for e in replayed)

    def test_blank_lines_skipped_garbage_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = '{"seq": 0, "t": 1.0, "kind": "census", "node": -1, "payload": {}}'
        path.write_text(good + "\n\nnot json\n")
        with pytest.raises(TraceError) as error:
            list(read_trace(path))
        assert ":3:" in str(error.value)
