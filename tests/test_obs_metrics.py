"""Metrics registry: counters, labels, cardinality bounds, exporters."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricError,
    MetricsRegistry,
)


class TestCounter:
    def test_unlabeled_counting(self):
        c = Counter("repro_things_total", "Things.")
        c.inc()
        c.inc(4)
        assert c.value() == 5.0
        assert c.total() == 5.0

    def test_counters_only_go_up(self):
        c = Counter("repro_things_total")
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labeled_series_are_independent(self):
        c = Counter("repro_frames_total", labels=("type",))
        c.inc(type="push")
        c.inc(2, type="ack")
        assert c.value(type="push") == 1.0
        assert c.value(type="ack") == 2.0
        assert c.value(type="rumor") == 0.0   # never-seen series reads 0
        assert c.total() == 3.0

    def test_wrong_label_names_raise(self):
        c = Counter("repro_frames_total", labels=("type",))
        with pytest.raises(MetricError):
            c.inc(kind="push")
        with pytest.raises(MetricError):
            c.inc()  # missing the declared label

    def test_cardinality_cap(self):
        c = Counter("repro_frames_total", labels=("type",), max_series=3)
        for i in range(3):
            c.inc(type=f"t{i}")
        with pytest.raises(MetricError) as error:
            c.inc(type="one-too-many")
        assert "cardinality" in str(error.value)
        # Existing series still work after the cap is hit.
        c.inc(type="t0")
        assert c.value(type="t0") == 2.0

    def test_invalid_names_rejected(self):
        with pytest.raises(MetricError):
            Counter("0bad")
        with pytest.raises(MetricError):
            Counter("repro_ok_total", labels=("bad-label",))


class TestHistogram:
    def test_observations_land_in_the_right_bucket(self):
        h = Histogram("repro_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 100.0):
            h.observe(value)
        cell = h.cell()
        assert cell.counts == [1, 2, 1]    # 100.0 only lands in +Inf
        assert cell.count == 5
        assert cell.sum == pytest.approx(106.05)

    def test_render_is_cumulative_with_inf(self):
        h = Histogram("repro_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(2.0)
        lines = h.render()
        assert 'repro_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_seconds_bucket{le="1"} 2' in lines
        assert 'repro_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_seconds_count 3" in lines

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(MetricError):
            Histogram("repro_seconds", buckets=(1.0, 0.1))


class TestRegistry:
    def test_declaration_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_things_total", labels=("type",))
        b = registry.counter("repro_things_total", labels=("type",))
        assert a is b

    def test_conflicting_redeclaration_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_things_total")
        with pytest.raises(MetricError):
            registry.gauge("repro_things_total")
        with pytest.raises(MetricError):
            registry.counter("repro_things_total", labels=("type",))

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "A.", labels=("type",)).inc(type="push")
        registry.gauge("repro_b").set(7)
        registry.histogram("repro_c_seconds", buckets=(1.0,)).observe(0.5)
        blob = json.loads(json.dumps(registry.snapshot()))
        assert blob["repro_a_total"]["type"] == "counter"
        assert blob["repro_a_total"]["series"] == [
            {"labels": {"type": "push"}, "value": 1.0}
        ]
        assert blob["repro_b"]["series"][0]["value"] == 7.0
        assert blob["repro_c_seconds"]["series"][0]["counts"] == [1]

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        frames = registry.counter(
            "repro_frames_total", "Frames by type.", labels=("type",)
        )
        frames.inc(type="push")
        frames.inc(3, type="ack")
        text = registry.render_prometheus()
        assert "# HELP repro_frames_total Frames by type." in text
        assert "# TYPE repro_frames_total counter" in text
        assert 'repro_frames_total{type="ack"} 3' in text
        assert 'repro_frames_total{type="push"} 1' in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_odd_total", labels=("what",)).inc(what='a"b\\c')
        text = registry.render_prometheus()
        assert 'what="a\\"b\\\\c"' in text
