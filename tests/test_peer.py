"""Outbound peer management: timeouts, retries, exponential backoff.

Every failure mode a live link exhibits is simulated with a deliberately
misbehaving localhost listener: connection refused, accept-then-stall,
and disconnection in the middle of a frame.
"""

import asyncio
import socket

import pytest

from repro.net.membership import PeerInfo
from repro.net.peer import InFlightBudget, Peer, PeerError, RetryPolicy
from repro.net.wire import Message, MessageType, encode_message, read_message

FAST = RetryPolicy(
    connect_timeout=0.5,
    io_timeout=0.25,
    attempts=3,
    backoff_base=0.01,
    backoff_factor=2.0,
    backoff_max=0.05,
)

PING = Message(MessageType.ACK, sender=0, payload={"ping": True})


def free_port() -> int:
    """A port that was just free; nothing listens on it afterwards."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def peer_for(port: int, policy: RetryPolicy = FAST) -> Peer:
    return Peer(PeerInfo(node_id=9, host="127.0.0.1", port=port), policy)


class TestRetryPolicy:
    def test_backoff_schedule_grows_exponentially(self):
        policy = RetryPolicy(attempts=5, backoff_base=0.1, backoff_factor=2.0, backoff_max=10.0)
        assert policy.backoff_schedule() == [0.1, 0.2, 0.4, 0.8]

    def test_backoff_schedule_is_capped(self):
        policy = RetryPolicy(attempts=6, backoff_base=1.0, backoff_factor=10.0, backoff_max=3.0)
        assert policy.backoff_schedule() == [1.0, 3.0, 3.0, 3.0, 3.0]

    def test_single_attempt_means_no_backoff(self):
        assert RetryPolicy(attempts=1).backoff_schedule() == []

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(io_timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestConnectionRefused:
    def test_all_attempts_fail_then_peer_error(self):
        async def scenario():
            peer = peer_for(free_port())
            with pytest.raises(PeerError, match="attempts"):
                await peer.call(PING)
            return peer

        peer = asyncio.run(scenario())
        assert peer.failures == FAST.attempts
        assert peer.exhausted == 1

    def test_recovers_when_listener_appears_between_attempts(self):
        """First attempt refused; the server comes up before the retry."""

        async def scenario():
            port = free_port()
            peer = peer_for(port, RetryPolicy(
                connect_timeout=0.5, io_timeout=0.5, attempts=3,
                backoff_base=0.2, backoff_factor=1.0, backoff_max=0.2,
            ))

            async def echo(reader, writer):
                message = await read_message(reader)
                writer.write(encode_message(
                    Message(MessageType.ACK, 9, {"echo": message.payload})
                ))
                await writer.drain()

            async def late_server():
                await asyncio.sleep(0.1)  # within the first backoff window
                return await asyncio.start_server(echo, "127.0.0.1", port)

            server_task = asyncio.ensure_future(late_server())
            reply = await peer.call(PING)
            server = await server_task
            server.close()
            await server.wait_closed()
            await peer.close()
            return peer, reply

        peer, reply = asyncio.run(scenario())
        assert reply.payload == {"echo": {"ping": True}}
        assert peer.failures >= 1     # the refused attempt was counted


class TestAcceptThenStall:
    def test_io_timeout_expires_and_retries(self):
        async def scenario():
            accepted = 0

            async def stall(reader, writer):
                nonlocal accepted
                accepted += 1
                await asyncio.sleep(10)  # never reply

            server = await asyncio.start_server(stall, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            peer = peer_for(port)
            with pytest.raises(PeerError, match="attempts"):
                await peer.call(PING)
            server.close()
            await server.wait_closed()
            return accepted, peer

        accepted, peer = asyncio.run(scenario())
        # Every attempt reconnected (the stalled connection is torn down).
        assert accepted == FAST.attempts
        assert peer.failures == FAST.attempts


class TestMidFrameDisconnect:
    def test_partial_frame_is_a_retryable_failure(self):
        async def scenario():
            async def tease(reader, writer):
                await read_message(reader)
                # Start a frame, then vanish mid-body.
                frame = encode_message(Message(MessageType.ACK, 9, {"pad": "x" * 200}))
                writer.write(frame[: len(frame) // 2])
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(tease, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            peer = peer_for(port)
            with pytest.raises(PeerError):
                await peer.call(PING)
            server.close()
            await server.wait_closed()
            return peer

        peer = asyncio.run(scenario())
        assert peer.failures == FAST.attempts

    def test_recovers_when_peer_heals_mid_retries(self):
        """One broken reply, then a healthy one: call succeeds."""

        async def scenario():
            calls = 0

            async def flaky(reader, writer):
                nonlocal calls
                calls += 1
                message = await read_message(reader)
                frame = encode_message(Message(MessageType.ACK, 9, {"n": calls}))
                if calls == 1:
                    writer.write(frame[:3])   # cut off mid-header
                    await writer.drain()
                    writer.close()
                    return
                writer.write(frame)
                await writer.drain()

            server = await asyncio.start_server(flaky, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            peer = peer_for(port)
            reply = await peer.call(PING)
            server.close()
            await server.wait_closed()
            await peer.close()
            return peer, reply

        peer, reply = asyncio.run(scenario())
        assert reply.payload == {"n": 2}
        assert peer.failures == 1
        assert peer.exhausted == 0


class TestConnectionReuse:
    def test_two_calls_share_one_connection(self):
        async def scenario():
            connections = 0

            async def echo(reader, writer):
                nonlocal connections
                connections += 1
                while True:
                    message = await read_message(reader)
                    if message is None:
                        return
                    writer.write(encode_message(Message(MessageType.ACK, 9, {})))
                    await writer.drain()

            server = await asyncio.start_server(echo, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            peer = peer_for(port)
            await peer.call(PING)
            await peer.call(PING)
            server.close()
            await server.wait_closed()
            await peer.close()
            return connections, peer

        connections, peer = asyncio.run(scenario())
        assert connections == 1
        assert peer.calls == 2
        assert peer.failures == 0


class TestInFlightBudget:
    def test_bounds_concurrency(self):
        async def scenario():
            budget = InFlightBudget(2)
            peak = 0

            async def hold():
                nonlocal peak
                async with budget:
                    peak = max(peak, budget.in_flight)
                    await asyncio.sleep(0.02)

            await asyncio.gather(*[hold() for __ in range(6)])
            return peak, budget

        peak, budget = asyncio.run(scenario())
        assert peak == 2
        assert budget.in_flight == 0
        assert budget.available == 2

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            InFlightBudget(0)
