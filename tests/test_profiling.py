"""Phase timers: the Profiler, its null variant, and runtime wiring."""

from repro.cluster.cluster import Cluster
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiling import NULL_PROFILER, PHASES, Profiler
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode


class TestProfiler:
    def test_phase_accumulates_seconds_and_calls(self):
        profiler = Profiler()
        for __ in range(3):
            with profiler.phase("merge"):
                pass
        snap = profiler.snapshot()
        assert snap["merge"]["calls"] == 3
        assert snap["merge"]["seconds"] >= 0.0

    def test_record_is_additive(self):
        profiler = Profiler()
        profiler.record("exchange", 0.25)
        profiler.record("exchange", 0.5)
        snap = profiler.snapshot()
        assert snap["exchange"]["seconds"] == 0.75
        assert snap["exchange"]["calls"] == 2

    def test_exports_through_the_registry(self):
        registry = MetricsRegistry()
        profiler = Profiler(registry)
        with profiler.phase("partner-selection"):
            pass
        text = registry.render_prometheus()
        assert "repro_phase_seconds_total" in text
        assert 'phase="partner-selection"' in text
        assert "repro_phase_calls_total" in text
        snapshot = registry.snapshot()
        assert snapshot["repro_phase_seconds_total"]["type"] == "counter"

    def test_null_profiler_records_nothing(self):
        assert NULL_PROFILER.enabled is False
        with NULL_PROFILER.phase("merge"):
            pass
        NULL_PROFILER.record("merge", 1.0)
        assert NULL_PROFILER.snapshot() == {}

    def test_null_phase_is_shared(self):
        # The hot loop hands out one no-op manager, not an allocation.
        assert NULL_PROFILER.phase("a") is NULL_PROFILER.phase("b")


class TestClusterProfiling:
    def epidemic(self, cluster):
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
        )
        cluster.inject_update(0, "k", "v", track=True)
        metrics = cluster.metrics
        cluster.run_until(lambda: metrics.infected == cluster.n, max_cycles=60)

    def test_disabled_by_default(self):
        cluster = Cluster(n=8, seed=0)
        assert cluster.profiler is NULL_PROFILER
        self.epidemic(cluster)
        assert cluster.profiler.snapshot() == {}

    def test_enable_profiling_times_the_phases(self):
        cluster = Cluster(n=8, seed=0)
        profiler = cluster.enable_profiling()
        assert profiler is cluster.profiler
        assert cluster.simulator.profiler is profiler
        self.epidemic(cluster)
        snap = profiler.snapshot()
        # Anti-entropy rounds exercise selection + exchange every cycle.
        for phase in ("partner-selection", "exchange"):
            assert snap[phase]["calls"] > 0, phase
            assert snap[phase]["seconds"] >= 0.0
        assert set(snap) <= set(PHASES)

    def test_engine_phase_times_scheduled_events(self):
        from repro.protocols.direct_mail import DirectMailProtocol

        cluster = Cluster(n=6, seed=2)
        profiler = cluster.enable_profiling()
        cluster.add_protocol(DirectMailProtocol())
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(2)  # mail deliveries are simulator events
        assert profiler.snapshot()["engine"]["calls"] > 0

    def test_emit_phase_needs_a_bus_consumer(self):
        from repro.obs.events import RingBufferSink

        cluster = Cluster(n=4, seed=1)
        profiler = cluster.enable_profiling()
        cluster.bus.add_sink(RingBufferSink())
        self.epidemic(cluster)
        assert profiler.snapshot()["emit"]["calls"] > 0

    def test_profiling_does_not_change_results(self):
        plain = Cluster(n=16, seed=5)
        self.epidemic(plain)
        profiled = Cluster(n=16, seed=5)
        profiled.enable_profiling()
        self.epidemic(profiled)
        assert plain.metrics.t_last == profiled.metrics.t_last
        assert plain.metrics.receipt_times == profiled.metrics.receipt_times
