"""Anti-entropy endgame recurrences and the pull mean-field model."""

import math

import pytest

from repro.analysis.recurrences import (
    cycles_to_eliminate,
    pull_counter_feedback_model,
    pull_tail,
    push_tail,
    push_tail_factor,
)


class TestPullTail:
    def test_squares_each_cycle(self):
        values = pull_tail(0.1, 3)
        assert values == pytest.approx([0.1, 0.01, 1e-4, 1e-8])

    def test_converges_from_any_start(self):
        assert pull_tail(0.9, 40)[-1] < 1e-10

    def test_fixed_points(self):
        assert pull_tail(0.0, 5)[-1] == 0.0
        assert pull_tail(1.0, 5)[-1] == 1.0

    def test_validates_probability(self):
        with pytest.raises(ValueError):
            pull_tail(1.5, 3)


class TestPushTail:
    def test_small_p_shrinks_by_e(self):
        values = push_tail(0.001, n=100000, cycles=1)
        assert values[1] / values[0] == pytest.approx(math.exp(-1), rel=0.01)

    def test_factor_constant(self):
        assert push_tail_factor() == pytest.approx(math.exp(-1))

    def test_slower_than_pull(self):
        pull = pull_tail(0.1, 6)[-1]
        push = push_tail(0.1, n=10000, cycles=6)[-1]
        assert push > pull * 100

    def test_monotone_decreasing(self):
        values = push_tail(0.5, n=1000, cycles=20)
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_validates_n(self):
        with pytest.raises(ValueError):
            push_tail(0.1, n=1, cycles=3)


class TestCyclesToEliminate:
    def test_pull_much_faster(self):
        pull = cycles_to_eliminate(0.1, n=1000, mode="pull")
        push = cycles_to_eliminate(0.1, n=1000, mode="push")
        assert pull < push
        # Pull: 0.1 -> 0.01 -> 1e-4 (< 1/1000): 2 cycles.
        assert pull == 2
        # Push: ln(100)/1 ~ 5 extra cycles at e-rate.
        assert push >= 5

    def test_mode_validated(self):
        with pytest.raises(ValueError):
            cycles_to_eliminate(0.1, 100, "sideways")


class TestPullCounterFeedbackModel:
    def test_residue_improves_sharply_with_k(self):
        """The pull counter+feedback family beats s = e^-m by a widening
        margin — the Table 3 phenomenon."""
        results = {k: pull_counter_feedback_model(k) for k in (1, 2, 3)}
        assert results[1].residue > results[2].residue > results[3].residue
        # Each extra k buys orders of magnitude.
        assert results[2].residue < results[1].residue / 10
        assert results[3].residue < results[2].residue / 10

    def test_beats_push_law(self):
        for k in (1, 2, 3):
            result = pull_counter_feedback_model(k)
            assert result.residue < math.exp(-result.traffic)

    def test_traffic_grows_with_k(self):
        traffics = [pull_counter_feedback_model(k).traffic for k in (1, 2, 3)]
        assert traffics == sorted(traffics)
        # Table 3 reports m = 2.7, 4.5, 6.1: the model should be in the
        # same regime (a few updates per site, growing by ~1.5-2 per k).
        assert 1.0 < traffics[0] < 5.0
        assert traffics[2] < 10.0

    def test_susceptible_history_monotone(self):
        history = pull_counter_feedback_model(2).susceptible_history
        assert all(a >= b for a, b in zip(history, history[1:]))

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            pull_counter_feedback_model(0)
        with pytest.raises(ValueError):
            pull_counter_feedback_model(1, n=1)


class TestModelAgainstSimulation:
    def test_pull_recurrence_predicts_simulated_tail(self):
        """Simulated pull anti-entropy endgame tracks p_{i+1} = p_i^2."""
        from repro.experiments.baselines import anti_entropy_tail
        from repro.protocols.base import ExchangeMode

        trajectory = anti_entropy_tail(
            n=2000, initial_susceptible=0.2, mode=ExchangeMode.PULL, seed=13
        )
        predicted = pull_tail(0.2, 2)
        # After one cycle: ~0.04 expected.
        assert trajectory.fractions[1] == pytest.approx(predicted[1], abs=0.02)

    def test_push_recurrence_predicts_simulated_tail(self):
        from repro.experiments.baselines import anti_entropy_tail
        from repro.protocols.base import ExchangeMode

        trajectory = anti_entropy_tail(
            n=2000, initial_susceptible=0.2, mode=ExchangeMode.PUSH, seed=13
        )
        predicted = push_tail(0.2, n=2000, cycles=2)
        assert trajectory.fractions[1] == pytest.approx(predicted[1], abs=0.03)
        assert trajectory.fractions[2] == pytest.approx(predicted[2], abs=0.03)


class TestPushCounterFeedbackModel:
    def test_matches_table1_structure(self):
        """Residue falls with k, traffic grows ~linearly, s ~ e^-m."""
        from repro.analysis.recurrences import push_counter_feedback_model

        results = {k: push_counter_feedback_model(k) for k in (1, 2, 3, 4, 5)}
        residues = [results[k].residue for k in (1, 2, 3, 4, 5)]
        traffics = [results[k].traffic for k in (1, 2, 3, 4, 5)]
        assert residues == sorted(residues, reverse=True)
        assert traffics == sorted(traffics)
        for k in (1, 2, 3):
            assert results[k].residue == pytest.approx(
                math.exp(-results[k].traffic), rel=0.6
            )

    def test_k1_in_paper_regime(self):
        from repro.analysis.recurrences import push_counter_feedback_model

        result = push_counter_feedback_model(1)
        # Table 1 k=1: residue 0.18, m 1.7 — the mean-field model lands
        # in the same neighborhood.
        assert 0.08 < result.residue < 0.35
        assert 1.0 < result.traffic < 2.5

    def test_pull_model_beats_push_model(self):
        """At matched k, pull's residue is far below push's — the
        analytic form of the Table 1 vs Table 3 comparison."""
        from repro.analysis.recurrences import (
            pull_counter_feedback_model,
            push_counter_feedback_model,
        )

        for k in (1, 2):
            push = push_counter_feedback_model(k)
            pull = pull_counter_feedback_model(k)
            assert pull.residue < push.residue / 5

    def test_validation(self):
        from repro.analysis.recurrences import push_counter_feedback_model

        with pytest.raises(ValueError):
            push_counter_feedback_model(0)
        with pytest.raises(ValueError):
            push_counter_feedback_model(2, n=1)
