"""Deterministic random streams: stability and independence."""

from repro.sim.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "site", 3) == derive_seed(1, "site", 3)

    def test_differs_by_master_seed(self):
        assert derive_seed(1, "site", 3) != derive_seed(2, "site", 3)

    def test_differs_by_path(self):
        assert derive_seed(1, "site", 3) != derive_seed(1, "site", 4)
        assert derive_seed(1, "site", 3) != derive_seed(1, "mail", 3)

    def test_path_boundaries_unambiguous(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


class TestRngRegistry:
    def test_same_path_same_stream_object(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(7).site_stream(3)
        b = RngRegistry(7).site_stream(3)
        assert [a.random() for __ in range(5)] == [b.random() for __ in range(5)]

    def test_streams_independent_of_request_order(self):
        first = RngRegistry(7)
        one = [first.site_stream(1).random() for __ in range(3)]
        second = RngRegistry(7)
        second.site_stream(2).random()  # interleave another stream
        two = [second.site_stream(1).random() for __ in range(3)]
        assert one == two

    def test_different_sites_get_different_sequences(self):
        registry = RngRegistry(7)
        a = [registry.site_stream(0).random() for __ in range(5)]
        b = [registry.site_stream(1).random() for __ in range(5)]
        assert a != b

    def test_fork_gives_independent_namespace(self):
        registry = RngRegistry(7)
        forked = registry.fork("experiment", 2)
        a = registry.site_stream(0).random()
        b = forked.site_stream(0).random()
        assert a != b

    def test_fork_reproducible(self):
        a = RngRegistry(7).fork("e", 1).site_stream(0).random()
        b = RngRegistry(7).fork("e", 1).site_stream(0).random()
        assert a == b
