"""Rumor mongering (Section 1.4): core mechanics of complex epidemics."""

import pytest

from repro.cluster.cluster import Cluster
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.sim.transport import ConnectionPolicy


def rumor_cluster(n, config, seed=0):
    cluster = Cluster(n=n, seed=seed)
    protocol = RumorMongeringProtocol(config)
    cluster.add_protocol(protocol)
    return cluster, protocol


def run_epidemic(n, config, seed=0, max_cycles=500):
    cluster, protocol = rumor_cluster(n, config, seed)
    cluster.inject_update(0, "k", "v", track=True)
    cluster.run_until(lambda: not protocol.active, max_cycles=max_cycles)
    return cluster, protocol


class TestConfigValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            RumorConfig(k=0)

    def test_minimization_requires_push_pull(self):
        with pytest.raises(ValueError):
            RumorConfig(mode=ExchangeMode.PUSH, minimization=True)

    def test_minimization_requires_feedback_counters(self):
        with pytest.raises(ValueError):
            RumorConfig(
                mode=ExchangeMode.PUSH_PULL, minimization=True, counter=False
            )

    def test_reset_on_success_auto(self):
        assert RumorConfig(mode=ExchangeMode.PULL).resets_on_success
        assert not RumorConfig(mode=ExchangeMode.PUSH).resets_on_success
        assert RumorConfig(
            mode=ExchangeMode.PUSH, reset_on_success=True
        ).resets_on_success

    def test_describe_mentions_variant(self):
        text = RumorConfig(mode=ExchangeMode.PULL, feedback=False, counter=False).describe()
        assert "pull" in text and "blind" in text and "coin" in text


class TestInfectionStates:
    def test_injection_makes_site_infective(self):
        cluster, protocol = rumor_cluster(5, RumorConfig())
        cluster.inject_update(0, "k", "v")
        assert protocol.is_infective(0, "k")
        assert protocol.infective_count("k") == 1

    def test_receipt_makes_recipient_infective(self):
        cluster, protocol = rumor_cluster(5, RumorConfig(k=5))
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: cluster.metrics.infected > 1, max_cycles=20)
        newly = [s for s in cluster.metrics.receipt_times if s != 0]
        assert any(protocol.is_infective(s, "k") for s in newly)

    def test_removed_sites_keep_the_value(self):
        cluster, protocol = run_epidemic(100, RumorConfig(k=3))
        # Everyone who got the update retains it after quiescence.
        for site in cluster.metrics.receipt_times:
            assert cluster.sites[site].store.get("k") == "v"
        assert not protocol.active

    def test_quiescence_reached(self):
        cluster, protocol = run_epidemic(200, RumorConfig(k=2))
        assert protocol.infective_count() == 0

    def test_newer_update_refreshes_rumor(self):
        cluster, protocol = rumor_cluster(5, RumorConfig(k=1))
        cluster.inject_update(0, "k", "v1")
        rumor_v1 = protocol.hot_rumors(0)["k"]
        cluster.inject_update(0, "k", "v2")
        rumor_v2 = protocol.hot_rumors(0)["k"]
        assert rumor_v2.entry.timestamp > rumor_v1.entry.timestamp
        assert rumor_v2.counter == 0

    def test_stale_news_does_not_downgrade_rumor(self):
        cluster, protocol = rumor_cluster(5, RumorConfig(k=1))
        old = cluster.sites[1].store.update("k", "old")  # stamped cycle 0
        cluster.run_cycle()
        cluster.inject_update(0, "k", "new")             # stamped cycle 1
        protocol.make_hot(0, old)
        assert protocol.hot_rumors(0)["k"].entry.value == "new"


class TestPushDynamics:
    def test_only_infective_sites_initiate(self):
        cluster, protocol = rumor_cluster(50, RumorConfig(mode=ExchangeMode.PUSH, k=2))
        cluster.run_cycle()
        assert protocol.stats.conversations == 0  # nobody infective yet
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()
        assert protocol.stats.conversations == 1  # just the seed

    def test_epidemic_growth_roughly_doubles(self):
        cluster, protocol = rumor_cluster(
            1000, RumorConfig(mode=ExchangeMode.PUSH, k=5), seed=3
        )
        cluster.inject_update(0, "k", "v", track=True)
        for cycle in range(1, 6):
            cluster.run_cycle()
            assert cluster.metrics.infected <= 2 ** cycle

    def test_counter_k1_stops_after_one_useless_push(self):
        cluster, protocol = rumor_cluster(
            2, RumorConfig(mode=ExchangeMode.PUSH, feedback=True, counter=True, k=1)
        )
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()   # 0 pushes to 1: useful
        assert protocol.is_infective(0, "k")
        assert protocol.is_infective(1, "k")
        cluster.run_cycles(3)  # pushes now useless; both deactivate fast
        assert not protocol.active

    def test_blind_counter_lives_exactly_k_cycles(self):
        k = 4
        cluster, protocol = rumor_cluster(
            30, RumorConfig(mode=ExchangeMode.PUSH, feedback=False, counter=True, k=k)
        )
        cluster.inject_update(0, "k", "v")
        for __ in range(k - 1):
            cluster.run_cycle()
            assert protocol.is_infective(0, "k")
        cluster.run_cycle()
        assert not protocol.is_infective(0, "k")


class TestPullDynamics:
    def test_every_site_pulls_each_cycle(self):
        cluster, protocol = rumor_cluster(20, RumorConfig(mode=ExchangeMode.PULL))
        cluster.run_cycle()
        # Even a quiescent database generates pull requests (the paper's
        # stated drawback of pull).
        assert protocol.stats.conversations == 20
        assert protocol.stats.updates_sent == 0

    def test_pull_spreads_update(self):
        cluster, protocol = run_epidemic(
            300, RumorConfig(mode=ExchangeMode.PULL, k=2), seed=2
        )
        assert cluster.metrics.residue < 0.05

    def test_footnote_counter_reset_on_any_needy_recipient(self):
        # Site 0 infective among 3 sites; two pulls in one cycle, one
        # needy and one not -> counter resets rather than incrementing.
        config = RumorConfig(mode=ExchangeMode.PULL, feedback=True, counter=True, k=1)
        cluster, protocol = rumor_cluster(3, config, seed=11)
        cluster.inject_update(0, "k", "v")
        # Manually give site 1 the value so its pull is unnecessary,
        # while site 2's pull is useful.
        update = protocol.hot_rumors(0)["k"]
        cluster.sites[1].store.apply_entry("k", update.entry)
        cluster.run_cycle()
        # Whether the rumor survived depends on who pulled site 0; what
        # must never happen at k=1 is survival after a cycle where all
        # pullers were unneedy AND none needy.
        rumors = protocol.hot_rumors(0)
        if "k" in rumors:
            assert rumors["k"].counter == 0  # reset or untouched


class TestPushPullDynamics:
    def test_push_pull_converges_fast_and_fully(self):
        cluster, protocol = run_epidemic(
            300, RumorConfig(mode=ExchangeMode.PUSH_PULL, k=2), seed=4
        )
        assert cluster.metrics.residue < 0.02
        assert cluster.metrics.t_last < 25

    def test_minimization_variant_runs_and_converges(self):
        config = RumorConfig(
            mode=ExchangeMode.PUSH_PULL, feedback=True, counter=True,
            k=2, minimization=True,
        )
        cluster, protocol = run_epidemic(300, config, seed=5)
        assert cluster.metrics.residue < 0.02


class TestConnectionLimits:
    def test_rejections_happen_under_limit_one(self):
        config = RumorConfig(
            mode=ExchangeMode.PULL,
            policy=ConnectionPolicy(connection_limit=1, hunt_limit=0),
        )
        cluster, protocol = rumor_cluster(100, config, seed=6)
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(3)
        assert protocol.stats.rejected > 0

    def test_push_with_limit_still_completes_mostly(self):
        config = RumorConfig(
            mode=ExchangeMode.PUSH, feedback=True, counter=True, k=4,
            policy=ConnectionPolicy(connection_limit=1, hunt_limit=0),
        )
        cluster, protocol = run_epidemic(300, config, seed=7)
        assert cluster.metrics.residue < 0.1


class TestTrafficAccounting:
    def test_updates_sent_counted_per_rumor_shipment(self):
        cluster, protocol = rumor_cluster(2, RumorConfig(mode=ExchangeMode.PUSH, k=9))
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycle()
        assert cluster.metrics.update_sends == 1   # 0 -> 1, useful
        cluster.run_cycle()
        # Both sites are now infective; each pushes the (useless) rumor.
        assert cluster.metrics.update_sends == 3

    def test_residue_traffic_relation_holds(self):
        """The paper's s = e^-m law for push variants (within noise)."""
        import math

        cluster, protocol = run_epidemic(
            1000, RumorConfig(mode=ExchangeMode.PUSH, k=3), seed=8
        )
        m = cluster.metrics.traffic_per_site
        s = cluster.metrics.residue
        if s > 0:
            assert s == pytest.approx(math.exp(-m), rel=1.0)
