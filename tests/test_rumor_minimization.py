"""Counter minimization micro-semantics (Section 1.4, 'Minimization').

"use a push and a pull together, and if both sites already know the
update, then only the site with the smaller counter is incremented (in
the case of equality both must be incremented)."
"""

from repro.cluster.cluster import Cluster
from repro.protocols.base import ExchangeMode
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol


def pair_cluster(k=5, seed=0):
    """Two sites, both hot with the same rumor, zeroed counters."""
    cluster = Cluster(n=2, seed=seed)
    protocol = RumorMongeringProtocol(
        RumorConfig(mode=ExchangeMode.PUSH_PULL, k=k, minimization=True)
    )
    cluster.add_protocol(protocol)
    cluster.inject_update(0, "k", "v")
    cluster.run_cycle()  # site 1 learns and becomes hot
    assert protocol.is_infective(0, "k") and protocol.is_infective(1, "k")
    return cluster, protocol


def counters(protocol):
    return (
        protocol._hot[0]["k"].counter if "k" in protocol._hot.get(0, {}) else None,
        protocol._hot[1]["k"].counter if "k" in protocol._hot.get(1, {}) else None,
    )


class TestMinimizationRule:
    def test_equal_counters_both_increment(self):
        cluster, protocol = pair_cluster(k=5)
        c0, c1 = counters(protocol)
        cluster.run_cycle()
        n0, n1 = counters(protocol)
        assert n0 == c0 + 1
        assert n1 == c1 + 1

    def test_smaller_counter_increments_alone(self):
        cluster, protocol = pair_cluster(k=10)
        protocol._hot[0]["k"].counter = 3   # site 0 is "older" in interest
        protocol._hot[1]["k"].counter = 1
        cluster.run_cycle()
        n0, n1 = counters(protocol)
        assert n0 == 3    # larger counter untouched
        assert n1 == 2    # smaller one incremented

    def test_counters_converge_then_march_together(self):
        cluster, protocol = pair_cluster(k=10)
        protocol._hot[0]["k"].counter = 4
        protocol._hot[1]["k"].counter = 0
        for __ in range(4):
            cluster.run_cycle()
        n0, n1 = counters(protocol)
        assert n0 == 4 and n1 == 4
        cluster.run_cycle()
        assert counters(protocol) == (5, 5)

    def test_deactivation_at_k(self):
        cluster, protocol = pair_cluster(k=2)
        cluster.run_cycle()   # counters 1,1
        cluster.run_cycle()   # counters 2,2 -> both removed
        assert not protocol.active

    def test_useful_transfer_still_counts_normally(self):
        """When one side's rumor is genuinely newer, the exchange is a
        normal useful push, not a joint minimization event."""
        cluster, protocol = pair_cluster(k=5)
        protocol._hot[0]["k"].counter = 2
        cluster.inject_update(0, "k", "v2")   # fresh rumor at site 0
        assert protocol._hot[0]["k"].counter == 0
        cluster.run_cycle()
        # Site 1 received the newer value and is hot with counter 0.
        assert cluster.sites[1].store.get("k") == "v2"
        assert protocol._hot[1]["k"].counter == 0


class TestMinimizationWithThirdParty:
    def test_mixed_contacts_aggregate_conservatively(self):
        """With three sites, a cycle can bring one site both a joint
        (minimization) event and a useful/useless event; the counter
        advances at most once per cycle."""
        cluster = Cluster(n=3, seed=3)
        protocol = RumorMongeringProtocol(
            RumorConfig(mode=ExchangeMode.PUSH_PULL, k=10, minimization=True)
        )
        cluster.add_protocol(protocol)
        cluster.inject_update(0, "k", "v")
        before = {s: r.counter for s, rumors in protocol._hot.items()
                  for key, r in rumors.items()}
        cluster.run_cycles(3)
        for site_id in cluster.site_ids:
            rumor = protocol._hot[site_id].get("k")
            if rumor is not None:
                assert rumor.counter <= 3
