"""The parallel trial engine: fan-out, seeding, determinism."""

import pytest

from repro.experiments.runner import (
    SERIAL,
    TrialRunner,
    default_jobs,
    resolve_runner,
    trial_seeds,
)


def _square(x):
    return x * x


def _with_seed(seed, scale=1):
    return seed * scale


class TestTrialRunner:
    def test_jobs_default_is_machine_width(self):
        assert TrialRunner().jobs == default_jobs()
        assert default_jobs() >= 1

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            TrialRunner(jobs=0)
        with pytest.raises(ValueError):
            TrialRunner(jobs=-2)

    def test_serial_map_preserves_order(self):
        runner = TrialRunner(jobs=1)
        results = runner.map(_square, [dict(x=i) for i in range(10)])
        assert results == [i * i for i in range(10)]

    def test_parallel_map_preserves_order(self):
        runner = TrialRunner(jobs=2)
        results = runner.map(_square, [dict(x=i) for i in range(10)])
        assert results == [i * i for i in range(10)]

    def test_parallel_matches_serial(self):
        params = [dict(seed=s, scale=3) for s in range(20)]
        assert TrialRunner(jobs=4).map(_with_seed, params) == TrialRunner(
            jobs=1
        ).map(_with_seed, params)

    def test_single_task_stays_in_process(self):
        # One task gains nothing from a pool; the runner runs it inline.
        calls = []

        def local(x):
            calls.append(x)
            return x

        assert TrialRunner(jobs=8).map(local, [dict(x=7)]) == [7]
        assert calls == [7]

    def test_empty_batch(self):
        assert TrialRunner(jobs=4).map(_square, []) == []

    def test_describe(self):
        assert TrialRunner(jobs=1).describe() == "serial"
        assert "4" in TrialRunner(jobs=4).describe()

    def test_resolve_runner(self):
        assert resolve_runner(None) is SERIAL
        runner = TrialRunner(jobs=2)
        assert resolve_runner(runner) is runner


class TestTrialSeeds:
    def test_deterministic(self):
        assert trial_seeds(1, "x", count=5) == trial_seeds(1, "x", count=5)

    def test_distinct_per_index(self):
        seeds = trial_seeds(1, "x", count=20)
        assert len(set(seeds)) == 20

    def test_distinct_per_namespace(self):
        assert trial_seeds(1, "x", count=5) != trial_seeds(1, "y", count=5)
        assert trial_seeds(1, "x", count=5) != trial_seeds(2, "x", count=5)


class TestExperimentDeterminism:
    """Parallel and serial runs must produce identical table rows."""

    @pytest.mark.parametrize("table_index", [1, 2, 3])
    def test_tables_identical_across_jobs(self, table_index):
        from repro.experiments import tables

        table = getattr(tables, f"table{table_index}")
        serial_rows = table(n=60, runs=2, runner=TrialRunner(jobs=1))
        parallel_rows = table(n=60, runs=2, runner=TrialRunner(jobs=4))
        assert [r.as_tuple() for r in serial_rows] == [
            r.as_tuple() for r in parallel_rows
        ]

    def test_runner_defaults_match_legacy_serial_path(self):
        # runner=None must reproduce the pre-runner results exactly:
        # same seed formula, same order, no fan-out surprises.
        from repro.experiments.tables import table1

        assert [r.as_tuple() for r in table1(n=60, runs=2)] == [
            r.as_tuple() for r in table1(n=60, runs=2, runner=TrialRunner(jobs=2))
        ]

    def test_deathcert_suite_identical_across_jobs(self):
        from repro.experiments.deathcert_scenarios import deletion_suite

        serial = deletion_suite(runner=TrialRunner(jobs=1))
        parallel = deletion_suite(runner=TrialRunner(jobs=4))
        assert [(label, result.resurrected) for label, result in serial] == [
            (label, result.resurrected) for label, result in parallel
        ]
