"""Checkpoint serialization: JSON round-trips of store content."""

import json

import pytest

from repro.core.items import DeathCertificate, VersionedValue
from repro.core.serialize import (
    decode_entry,
    decode_timestamp,
    decode_update,
    dump_store,
    encode_entry,
    encode_timestamp,
    encode_update,
    load_store,
)
from repro.core.store import StoreUpdate
from repro.core.timestamps import Timestamp

from conftest import make_store, ts


class TestTimestampCodec:
    def test_round_trip(self):
        stamp = Timestamp(3.5, site=7, sequence=11)
        assert decode_timestamp(encode_timestamp(stamp)) == stamp

    def test_json_compatible(self):
        blob = json.dumps(encode_timestamp(Timestamp(1.0, 2, 3)))
        assert decode_timestamp(json.loads(blob)) == Timestamp(1.0, 2, 3)


class TestEntryCodec:
    def test_value_round_trip(self):
        entry = VersionedValue({"nested": [1, 2]}, ts(4.0, 1, 2))
        assert decode_entry(encode_entry(entry)) == entry

    def test_certificate_round_trip(self):
        cert = DeathCertificate(
            ts(1.0), ts(1.0), retention_sites=(3, 9)
        ).reactivated(now=50.0)
        decoded = decode_entry(encode_entry(cert))
        assert decoded == cert
        assert decoded.activation_timestamp.time == 50.0
        assert decoded.retention_sites == (3, 9)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_entry({"kind": "mystery"})

    def test_update_round_trip(self):
        update = StoreUpdate(key="k", entry=VersionedValue("v", ts(1.0)))
        assert decode_update(encode_update(update)) == update


class TestStoreDump:
    def _populated_store(self):
        store = make_store(0)
        store.update("a", 1)
        store.update("b", {"addr": "10.0.0.1"})
        store.delete("a", retention_sites=(0,))
        return store

    def test_dump_is_json_serializable(self):
        store = self._populated_store()
        blob = json.dumps(dump_store(store))
        assert "certificate" in blob

    def test_restore_into_empty_store_reproduces_content(self):
        store = self._populated_store()
        restored = make_store(1)
        applied = load_store(json.loads(json.dumps(dump_store(store))), restored)
        assert applied == 2
        assert restored.agrees_with(store)
        assert restored.checksum == store.checksum

    def test_dump_includes_dormant_certificates(self):
        store = self._populated_store()
        for __ in range(30):
            store.clock.next_timestamp()
        store.sweep_certificates(tau1=5.0, tau2=1000.0)
        assert store.dormant_count() == 1
        payload = dump_store(store)
        assert len(payload["dormant"]) == 1
        restored = make_store(0)
        load_store(payload, restored)
        # The certificate is live again in the restored store; the next
        # sweep will re-expire it into dormancy.
        assert restored.entry("a") is not None
        assert restored.entry("a").is_deletion

    def test_load_merges_by_last_writer_wins(self):
        old = make_store(0)
        old.update("k", "stale")
        payload = dump_store(old)
        target = make_store(1, start=100.0)
        target.update("k", "fresh")
        load_store(payload, target)
        assert target.get("k") == "fresh"

    def test_load_is_idempotent(self):
        store = self._populated_store()
        payload = dump_store(store)
        target = make_store(1)
        assert load_store(payload, target) > 0
        assert load_store(payload, target) == 0

    def test_version_checked(self):
        store = self._populated_store()
        payload = dump_store(store)
        payload["version"] = 99
        with pytest.raises(ValueError):
            load_store(payload, make_store(1))

    def test_crash_restore_scenario(self):
        """A site checkpoints, 'crashes', restores, and anti-entropy
        brings it fully current."""
        from repro.cluster.cluster import Cluster
        from repro.protocols.anti_entropy import (
            AntiEntropyConfig,
            AntiEntropyProtocol,
        )
        from repro.protocols.base import ExchangeMode

        cluster = Cluster(n=8, seed=1)
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
        )
        cluster.inject_update(0, "early", "e")
        cluster.run_until(cluster.converged, max_cycles=40)
        checkpoint = json.dumps(dump_store(cluster.sites[5].store))
        cluster.sites[5].up = False
        cluster.inject_update(0, "late", "l")
        cluster.run_until(
            lambda: cluster.converged(cluster.up_site_ids()), max_cycles=40
        )
        # "Restore from stable storage" (a no-op here since the store
        # survived, but prove the checkpoint alone would have sufficed).
        fresh = make_store(5)
        load_store(json.loads(checkpoint), fresh)
        assert fresh.get("early") == "e"
        cluster.sites[5].up = True
        cluster.run_until(cluster.converged, max_cycles=40)
        assert cluster.sites[5].store.get("late") == "l"
