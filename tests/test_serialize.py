"""Checkpoint serialization: JSON round-trips of store content."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.items import DeathCertificate, VersionedValue
from repro.core.serialize import (
    SerializeError,
    decode_entry,
    decode_timestamp,
    decode_update,
    decode_updates,
    dump_store,
    encode_entry,
    encode_timestamp,
    encode_update,
    encode_updates,
    load_store,
)
from repro.core.store import ReplicaStore, StoreUpdate
from repro.core.timestamps import SequenceClock, Timestamp

from conftest import make_store, ts


class TestTimestampCodec:
    def test_round_trip(self):
        stamp = Timestamp(3.5, site=7, sequence=11)
        assert decode_timestamp(encode_timestamp(stamp)) == stamp

    def test_json_compatible(self):
        blob = json.dumps(encode_timestamp(Timestamp(1.0, 2, 3)))
        assert decode_timestamp(json.loads(blob)) == Timestamp(1.0, 2, 3)


class TestEntryCodec:
    def test_value_round_trip(self):
        entry = VersionedValue({"nested": [1, 2]}, ts(4.0, 1, 2))
        assert decode_entry(encode_entry(entry)) == entry

    def test_certificate_round_trip(self):
        cert = DeathCertificate(
            ts(1.0), ts(1.0), retention_sites=(3, 9)
        ).reactivated(now=50.0)
        decoded = decode_entry(encode_entry(cert))
        assert decoded == cert
        assert decoded.activation_timestamp.time == 50.0
        assert decoded.retention_sites == (3, 9)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializeError):
            decode_entry({"kind": "mystery"})

    def test_update_round_trip(self):
        update = StoreUpdate(key="k", entry=VersionedValue("v", ts(1.0)))
        assert decode_update(encode_update(update)) == update


class TestStrictDecoding:
    """Wire hardening: malformed peer payloads raise SerializeError,
    never a bare KeyError."""

    def test_missing_kind(self):
        with pytest.raises(SerializeError, match="kind"):
            decode_entry({"timestamp": encode_timestamp(ts(1.0))})

    def test_non_dict_entry(self):
        with pytest.raises(SerializeError):
            decode_entry("not-an-object")

    def test_value_entry_missing_fields(self):
        with pytest.raises(SerializeError, match="value"):
            decode_entry({"kind": "value", "timestamp": encode_timestamp(ts(1.0))})
        with pytest.raises(SerializeError, match="timestamp"):
            decode_entry({"kind": "value", "value": 1})

    def test_certificate_missing_fields(self):
        stamp = encode_timestamp(ts(1.0))
        with pytest.raises(SerializeError, match="retention"):
            decode_entry({"kind": "certificate", "timestamp": stamp, "activation": stamp})
        with pytest.raises(SerializeError, match="activation"):
            decode_entry({"kind": "certificate", "timestamp": stamp, "retention": []})

    def test_certificate_bad_retention(self):
        stamp = encode_timestamp(ts(1.0))
        with pytest.raises(SerializeError, match="retention"):
            decode_entry(
                {"kind": "certificate", "timestamp": stamp,
                 "activation": stamp, "retention": ["site-3"]}
            )

    def test_certificate_activation_before_timestamp(self):
        with pytest.raises(SerializeError, match="activation"):
            decode_entry(
                {"kind": "certificate",
                 "timestamp": encode_timestamp(ts(5.0)),
                 "activation": encode_timestamp(ts(1.0)),
                 "retention": []}
            )

    def test_timestamp_field_types_checked(self):
        with pytest.raises(SerializeError, match="time"):
            decode_timestamp({"time": "soon", "site": 0, "seq": 0})
        with pytest.raises(SerializeError, match="site"):
            decode_timestamp({"time": 1.0, "site": 1.5, "seq": 0})
        with pytest.raises(SerializeError, match="seq"):
            decode_timestamp({"time": 1.0, "site": 0})
        with pytest.raises(SerializeError, match="site"):
            decode_timestamp({"time": 1.0, "site": True, "seq": 0})

    def test_update_missing_key(self):
        with pytest.raises(SerializeError, match="key"):
            decode_update({"entry": encode_entry(VersionedValue("v", ts(1.0)))})

    def test_update_null_key(self):
        with pytest.raises(SerializeError, match="key"):
            decode_update({"key": None, "entry": encode_entry(VersionedValue("v", ts(1.0)))})

    def test_update_list_must_be_array(self):
        with pytest.raises(SerializeError, match="array"):
            decode_updates({"not": "a list"})

    def test_update_list_round_trip(self):
        updates = [
            StoreUpdate(key="a", entry=VersionedValue(1, ts(1.0))),
            StoreUpdate(key="b", entry=DeathCertificate(ts(2.0), ts(2.0))),
        ]
        blob = json.loads(json.dumps(encode_updates(updates)))
        assert decode_updates(blob) == updates

    def test_serialize_error_is_value_error(self):
        # Callers that guarded against the old ValueError keep working.
        assert issubclass(SerializeError, ValueError)

    def test_load_store_missing_section(self):
        store = make_store(0)
        store.update("a", 1)
        payload = dump_store(store)
        del payload["dormant"]
        with pytest.raises(SerializeError, match="dormant"):
            load_store(payload, make_store(1))


# ---------------------------------------------------------------------------
# Property test: dump/load round-trips arbitrary store contents, death
# certificates with retention lists and reactivated activation
# timestamps included.
# ---------------------------------------------------------------------------

_keys = st.one_of(
    st.text(min_size=1, max_size=8),
    st.integers(-3, 3),
)

_ops = st.lists(
    st.tuples(
        _keys,
        st.one_of(
            st.integers(-5, 5),                              # update with int value
            st.text(max_size=5),                             # update with str value
            st.just(None),                                   # delete (certificate)
        ),
        st.lists(st.integers(0, 7), max_size=3),             # retention sites
        st.booleans(),                                       # reactivate after delete?
    ),
    max_size=25,
)


def _build_store(ops) -> ReplicaStore:
    store = ReplicaStore(site_id=0, clock=SequenceClock(site=0))
    for key, value, retention, reactivate in ops:
        if value is None:
            store.delete(key, retention_sites=tuple(retention))
            if reactivate:
                cert = store.entry(key)
                # Push the activation timestamp forward, as a dormant
                # certificate awakening would (Section 2.2).
                store.apply_entry(key, cert.reactivated(now=cert.timestamp.time + 50.0))
        else:
            store.update(key, value)
    return store


class TestDumpLoadProperty:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops)
    def test_round_trip_reproduces_store(self, ops):
        store = _build_store(ops)
        blob = json.dumps(dump_store(store))          # must survive real JSON
        restored = make_store(1)
        load_store(json.loads(blob), restored)
        assert restored.agrees_with(store)
        assert restored.checksum == store.checksum
        # Activation timestamps and retention lists round-trip exactly
        # (agrees_with ignores them by design, so check explicitly).
        for key, entry in store.entries():
            theirs = restored.entry(key)
            if entry.is_deletion:
                assert theirs.activation_timestamp == entry.activation_timestamp
                assert theirs.retention_sites == entry.retention_sites

    @settings(max_examples=25, deadline=None)
    @given(ops=_ops)
    def test_load_is_idempotent(self, ops):
        store = _build_store(ops)
        payload = dump_store(store)
        target = make_store(2)
        load_store(payload, target)
        assert load_store(payload, target) == 0


class TestStoreDump:
    def _populated_store(self):
        store = make_store(0)
        store.update("a", 1)
        store.update("b", {"addr": "10.0.0.1"})
        store.delete("a", retention_sites=(0,))
        return store

    def test_dump_is_json_serializable(self):
        store = self._populated_store()
        blob = json.dumps(dump_store(store))
        assert "certificate" in blob

    def test_restore_into_empty_store_reproduces_content(self):
        store = self._populated_store()
        restored = make_store(1)
        applied = load_store(json.loads(json.dumps(dump_store(store))), restored)
        assert applied == 2
        assert restored.agrees_with(store)
        assert restored.checksum == store.checksum

    def test_dump_includes_dormant_certificates(self):
        store = self._populated_store()
        for __ in range(30):
            store.clock.next_timestamp()
        store.sweep_certificates(tau1=5.0, tau2=1000.0)
        assert store.dormant_count() == 1
        payload = dump_store(store)
        assert len(payload["dormant"]) == 1
        restored = make_store(0)
        load_store(payload, restored)
        # The certificate is live again in the restored store; the next
        # sweep will re-expire it into dormancy.
        assert restored.entry("a") is not None
        assert restored.entry("a").is_deletion

    def test_load_merges_by_last_writer_wins(self):
        old = make_store(0)
        old.update("k", "stale")
        payload = dump_store(old)
        target = make_store(1, start=100.0)
        target.update("k", "fresh")
        load_store(payload, target)
        assert target.get("k") == "fresh"

    def test_load_is_idempotent(self):
        store = self._populated_store()
        payload = dump_store(store)
        target = make_store(1)
        assert load_store(payload, target) > 0
        assert load_store(payload, target) == 0

    def test_version_checked(self):
        store = self._populated_store()
        payload = dump_store(store)
        payload["version"] = 99
        with pytest.raises(ValueError):
            load_store(payload, make_store(1))

    def test_crash_restore_scenario(self):
        """A site checkpoints, 'crashes', restores, and anti-entropy
        brings it fully current."""
        from repro.cluster.cluster import Cluster
        from repro.protocols.anti_entropy import (
            AntiEntropyConfig,
            AntiEntropyProtocol,
        )
        from repro.protocols.base import ExchangeMode

        cluster = Cluster(n=8, seed=1)
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
        )
        cluster.inject_update(0, "early", "e")
        cluster.run_until(cluster.converged, max_cycles=40)
        checkpoint = json.dumps(dump_store(cluster.sites[5].store))
        cluster.sites[5].up = False
        cluster.inject_update(0, "late", "l")
        cluster.run_until(
            lambda: cluster.converged(cluster.up_site_ids()), max_cycles=40
        )
        # "Restore from stable storage" (a no-op here since the store
        # survived, but prove the checkpoint alone would have sufficed).
        fresh = make_store(5)
        load_store(json.loads(checkpoint), fresh)
        assert fresh.get("early") == "e"
        cluster.sites[5].up = True
        cluster.run_until(cluster.converged, max_cycles=40)
        assert cluster.sites[5].store.get("late") == "l"
