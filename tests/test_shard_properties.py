"""Property-based tests of the sharded checksum layer.

The hierarchical exchange is only sound if the bucket decomposition is:
whatever sequence of updates, deletions and certificate sweeps a store
absorbs, every leaf of the checksum tree must equal a fresh per-bucket
recomputation, every internal node the XOR of its children, and the
root the classic whole-database checksum.  These properties are what
let a drill-down prune an equal subtree without looking inside it.
"""

from hypothesis import given, settings, strategies as st

from repro.core.store import ReplicaStore
from repro.core.timestamps import SequenceClock
from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import HierarchicalChecksum

KEYS = st.one_of(
    st.integers(0, 30),
    st.sampled_from(["alpha", "beta", "gamma", "1", ("pair", 1), 2.5]),
)

OPS = st.lists(
    st.tuples(st.sampled_from(["update", "delete", "sweep"]), KEYS),
    max_size=60,
)


def fresh_store(site: int = 0, bucket_bits: int = 4) -> ReplicaStore:
    return ReplicaStore(
        site_id=site, clock=SequenceClock(site=site), bucket_bits=bucket_bits
    )


def run_ops(store: ReplicaStore, ops) -> None:
    for op, key in ops:
        if op == "update":
            store.update(key, f"v-{key!r}")
        elif op == "delete" and store.entry(key) is not None:
            store.delete(key)
        elif op == "sweep":
            # tau1=0 expires every certificate immediately — the
            # hardest case for bucket bookkeeping, since entries leave
            # the active table behind the exchange's back.
            store.sweep_certificates(tau1=0.0)


class TestBucketInvariants:
    @given(OPS)
    @settings(max_examples=60)
    def test_leaves_match_fresh_recomputation(self, ops):
        store = fresh_store()
        run_ops(store, ops)
        for bucket in range(store.bucket_count):
            assert store.bucket_checksum(bucket) == store.recompute_bucket_checksum(
                bucket
            )

    @given(OPS)
    @settings(max_examples=60)
    def test_internal_nodes_are_xor_of_children(self, ops):
        store = fresh_store()
        run_ops(store, ops)
        tree = store.checksum_tree
        for node in range(1, tree.buckets):
            left, right = tree.children(node)
            assert tree.node(node) == tree.node(left) ^ tree.node(right)

    @given(OPS)
    @settings(max_examples=60)
    def test_root_equals_whole_database_checksum(self, ops):
        store = fresh_store()
        run_ops(store, ops)
        assert store.checksum == store.recompute_checksum()

    @given(OPS)
    @settings(max_examples=60)
    def test_buckets_partition_the_active_table(self, ops):
        store = fresh_store()
        run_ops(store, ops)
        seen = {}
        for bucket in range(store.bucket_count):
            for key, entry in store.bucket_entries(bucket):
                assert key not in seen, "key filed in two buckets"
                assert store.bucket_of(key) == bucket
                seen[key] = entry
        assert seen == dict(store.entries())

    @given(OPS)
    @settings(max_examples=60)
    def test_bucket_updates_newest_first_is_sorted(self, ops):
        store = fresh_store()
        run_ops(store, ops)
        for bucket in range(store.bucket_count):
            stamps = [
                u.entry.timestamp for u in store.bucket_updates_newest_first(bucket)
            ]
            assert stamps == sorted(stamps, reverse=True)


class TestHierarchicalExchangeProperties:
    @given(OPS, OPS, OPS)
    @settings(max_examples=40)
    def test_exchange_converges_examining_only_dirty_buckets(
        self, shared_ops, a_ops, b_ops
    ):
        a = fresh_store(site=0)
        b = fresh_store(site=1)
        # Shared history: replay one op stream into both stores.
        history = fresh_store(site=2)
        run_ops(history, shared_ops)
        for key, entry in history.entries():
            a.apply_entry(key, entry)
            b.apply_entry(key, entry)
        run_ops(a, a_ops)
        run_ops(b, b_ops)
        # What a full comparison would examine, and which buckets
        # actually differ, measured before the exchange mutates anything.
        union = len(dict(a.entries()).keys() | dict(b.entries()).keys())
        dirty_entries = sum(
            max(a.bucket_len(bucket), b.bucket_len(bucket))
            for bucket in range(a.bucket_count)
            if a.bucket_checksum(bucket) != b.bucket_checksum(bucket)
        )
        report = HierarchicalChecksum().exchange(a, b, ExchangeMode.PUSH_PULL)
        assert a.agrees_with(b)
        assert a.checksum == b.checksum
        assert not report.full_compare
        # The conversation never examines more than the dirty buckets'
        # contents (both sides), and never more than a full comparison.
        assert report.entries_examined <= 2 * dirty_entries
        assert report.entries_examined <= 2 * union
