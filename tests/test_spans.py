"""Delivery spans: trace ids, wire contexts, and the sim's span stream."""

import pytest

from repro.cluster.cluster import Cluster
from repro.core.items import VersionedValue
from repro.core.store import ReplicaStore, StoreUpdate
from repro.core.timestamps import Timestamp
from repro.obs.events import (
    EventKind,
    JsonlTraceWriter,
    RingBufferSink,
    read_trace,
)
from repro.obs.spans import (
    SPAN_FIELDS,
    SpanContext,
    TraceHopLru,
    span_of_event,
    trace_id_of,
)
from repro.protocols.direct_mail import DirectMailProtocol
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol


def update_of(key="k", time=3.5, site=2, sequence=7) -> StoreUpdate:
    return StoreUpdate(key, VersionedValue("v", Timestamp(time, site, sequence)))


class TestTraceId:
    def test_derived_from_origin_timestamp(self):
        assert trace_id_of(update_of()) == "k@3.5#2.7"

    def test_same_update_same_id_everywhere(self):
        """Two replicas holding the same update derive the same trace id
        with no coordination — the id is the origin identity."""
        origin = ReplicaStore(site_id=4)
        update = origin.update("printer", "x")
        replica = ReplicaStore(site_id=9)
        replica.apply_update(update)
        (key, entry), = replica.entries()
        assert trace_id_of(StoreUpdate(key, entry)) == trace_id_of(update)

    def test_superseding_write_is_a_new_trace(self):
        store = ReplicaStore(site_id=0)
        first = store.update("k", "v1")
        second = store.update("k", "v2")
        assert trace_id_of(first) != trace_id_of(second)


class TestSpanContext:
    def test_wire_round_trip(self):
        ctx = SpanContext(trace="k@1#0.0", hop=3, sent_at=12.5)
        assert SpanContext.from_wire(ctx.to_wire()) == ctx

    def test_optional_fields_round_trip_as_none(self):
        ctx = SpanContext(trace="k@1#0.0")
        assert SpanContext.from_wire(ctx.to_wire()) == ctx

    @pytest.mark.parametrize(
        "blob",
        [None, 17, "ctx", [], {}, {"trace": ""}, {"trace": 5}, {"hop": 1}],
    )
    def test_malformed_blob_decodes_to_none(self, blob):
        assert SpanContext.from_wire(blob) is None

    @pytest.mark.parametrize("hop", ["2", -1, True, 1.5, None])
    def test_bad_hop_degrades_to_none(self, hop):
        ctx = SpanContext.from_wire({"trace": "t", "hop": hop, "sent_at": 1.0})
        assert ctx == SpanContext(trace="t", hop=None, sent_at=1.0)

    @pytest.mark.parametrize("sent_at", ["soon", True, None])
    def test_bad_sent_at_degrades_to_none(self, sent_at):
        ctx = SpanContext.from_wire({"trace": "t", "hop": 2, "sent_at": sent_at})
        assert ctx == SpanContext(trace="t", hop=2, sent_at=None)


class TestTraceHopLru:
    def test_bounded_with_lru_eviction(self):
        lru = TraceHopLru(maxsize=2)
        lru.setdefault("a", 1)
        lru.setdefault("b", 2)
        assert lru.get("a") == 1  # touch: "a" becomes most recent
        lru.setdefault("c", 3)  # over the bound: evicts "b", not "a"
        assert len(lru) == 2
        assert "b" not in lru and lru.get("b") is None
        assert lru.get("a") == 1 and lru.get("c") == 3

    def test_setdefault_keeps_existing_and_touches(self):
        lru = TraceHopLru(maxsize=2)
        assert lru.setdefault("a", 1) == 1
        assert lru.setdefault("a", 9) == 1  # existing entry wins…
        lru.setdefault("b", 2)
        lru.setdefault("a", 9)  # …and the lookup counts as a touch
        lru.setdefault("c", 3)
        assert "a" in lru and "b" not in lru

    def test_missing_trace_degrades_to_default(self):
        lru = TraceHopLru(maxsize=1)
        assert lru.get("never-seen") is None
        assert lru.get("never-seen", 7) == 7

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            TraceHopLru(maxsize=0)


def spans_of(sink):
    return [span_of_event(e) for e in sink.of_kind(EventKind.DELIVERY_SPAN)]


class TestSimulatorSpans:
    def test_injection_emits_the_root_span(self):
        cluster = Cluster(n=4, seed=0)
        sink = cluster.bus.add_sink(RingBufferSink())
        update = cluster.inject_update(0, "k", "v")
        (span,) = spans_of(sink)
        assert span.trace == trace_id_of(update)
        assert span.node == 0
        assert span.src is None
        assert span.hop == 0
        assert span.first is True
        assert span.sent_at is None  # sim spans never carry a send clock

    def test_first_deliveries_carry_source_and_hop(self):
        cluster = Cluster(n=6, seed=1)
        cluster.add_protocol(DirectMailProtocol())
        sink = cluster.bus.add_sink(RingBufferSink())
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()
        deliveries = [s for s in spans_of(sink) if s.src is not None]
        assert {s.node for s in deliveries} == {1, 2, 3, 4, 5}
        assert all(s.src == 0 and s.hop == 1 and s.first for s in deliveries)

    def test_redundant_targeted_delivery_is_a_non_first_span(self):
        """A rumor pushed at a site that already knows it shows up as a
        first=False span attributed to the delivering link."""
        cluster = Cluster(n=2, seed=2)
        rumor = RumorMongeringProtocol(RumorConfig(k=8))
        cluster.add_protocol(rumor)
        sink = cluster.bus.add_sink(RingBufferSink())
        cluster.inject_update(0, "k", "v")
        # With 2 sites the only partner already knows after cycle 1.
        cluster.run_cycles(3)
        redundant = [s for s in spans_of(sink) if not s.first]
        assert redundant, "no redundant deliveries in 3 cycles of n=2 rumor"
        assert all(s.src is not None for s in redundant)
        assert all(s.result in ("equal", "stale") for s in redundant)

    def test_span_payload_schema_is_canonical(self):
        cluster = Cluster(n=3, seed=3)
        cluster.add_protocol(DirectMailProtocol())
        sink = cluster.bus.add_sink(RingBufferSink())
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()
        events = sink.of_kind(EventKind.DELIVERY_SPAN)
        assert events
        for event in events:
            assert tuple(event.payload) == SPAN_FIELDS

    def test_silent_bus_skips_hop_bookkeeping(self):
        cluster = Cluster(n=4, seed=4)
        cluster.add_protocol(DirectMailProtocol())
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()
        assert len(cluster._span_hops) == 0


class TestJsonlWriterFlushing:
    def events(self, cluster, count):
        for i in range(count):
            cluster.inject_update(0, f"k{i}", i)

    def test_flush_every_bounds_tail_loss(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path, flush_every=2)
        cluster = Cluster(n=2, seed=0)
        cluster.bus.add_sink(writer)
        self.events(cluster, 5)  # 10 events: injected + span each
        # Without closing, every complete flush block is on disk.
        lines = [l for l in path.read_text().splitlines() if l]
        assert len(lines) >= 10 - 1
        writer.close()
        assert len(list(read_trace(path))) == 10

    def test_flush_every_zero_defers_to_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = JsonlTraceWriter(path, flush_every=0)
        cluster = Cluster(n=2, seed=0)
        cluster.bus.add_sink(writer)
        self.events(cluster, 3)
        writer.close()
        assert len(list(read_trace(path))) == 6

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceWriter(path, flush_every=0) as writer:
            cluster = Cluster(n=2, seed=0)
            cluster.bus.add_sink(writer)
            self.events(cluster, 2)
        assert writer._handle.closed
        assert len(list(read_trace(path))) == 4

    def test_negative_flush_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceWriter(tmp_path / "t.jsonl", flush_every=-1)


class TestSpanParsing:
    def test_other_kinds_parse_to_none(self):
        from repro.obs.events import Event

        assert span_of_event(Event(EventKind.NEWS_RECEIVED, 0.0, 0)) is None

    def test_malformed_span_payload_parses_to_none(self):
        from repro.obs.events import Event

        event = Event(EventKind.DELIVERY_SPAN, 0.0, 0, payload={"key": "k"})
        assert span_of_event(event) is None
