"""Spatial partner-selection distributions (Section 3)."""

import random
from collections import Counter

import pytest

from repro.topology import builders
from repro.topology.distance import SiteDistances
from repro.topology.spatial import (
    DistancePowerSelector,
    QDistanceSelector,
    QPowerSelector,
    SortedListSelector,
    UniformSelector,
    selector_for,
)


@pytest.fixture(scope="module")
def line_distances():
    return SiteDistances(builders.line(20))


class TestUniformSelector:
    def test_never_chooses_self(self):
        selector = UniformSelector([0, 1, 2, 3])
        rng = random.Random(0)
        assert all(selector.choose(2, rng) != 2 for __ in range(200))

    def test_covers_all_partners(self):
        selector = UniformSelector(list(range(5)))
        rng = random.Random(0)
        seen = {selector.choose(0, rng) for __ in range(300)}
        assert seen == {1, 2, 3, 4}

    def test_probability_is_uniform(self):
        selector = UniformSelector(list(range(5)))
        assert selector.probability(0, 3) == pytest.approx(0.25)
        assert selector.probability(0, 0) == 0.0

    def test_empirical_distribution_roughly_uniform(self):
        selector = UniformSelector(list(range(4)))
        rng = random.Random(7)
        counts = Counter(selector.choose(0, rng) for __ in range(3000))
        for partner in (1, 2, 3):
            assert counts[partner] / 3000 == pytest.approx(1 / 3, abs=0.05)

    def test_requires_two_sites(self):
        with pytest.raises(ValueError):
            UniformSelector([0])

    def test_works_with_non_contiguous_ids(self):
        selector = UniformSelector([5, 17, 99])
        rng = random.Random(0)
        assert all(selector.choose(17, rng) in (5, 99) for __ in range(50))


class TestWeightedSelectors:
    def test_probabilities_sum_to_one(self, line_distances):
        for selector in (
            DistancePowerSelector(line_distances, a=2.0),
            QPowerSelector(line_distances, a=2.0),
            QDistanceSelector(line_distances),
            SortedListSelector(line_distances, a=1.4),
            SortedListSelector(line_distances, a=1.4, form="exact"),
        ):
            total = sum(
                selector.probability(5, other)
                for other in line_distances.sites
                if other != 5
            )
            assert total == pytest.approx(1.0)

    def test_distance_power_prefers_near(self, line_distances):
        selector = DistancePowerSelector(line_distances, a=2.0)
        assert selector.probability(0, 1) > selector.probability(0, 2)
        assert selector.probability(0, 2) > selector.probability(0, 10)

    def test_distance_power_ratio_matches_formula(self, line_distances):
        selector = DistancePowerSelector(line_distances, a=2.0)
        ratio = selector.probability(0, 1) / selector.probability(0, 4)
        assert ratio == pytest.approx(16.0)

    def test_never_chooses_self(self, line_distances):
        rng = random.Random(1)
        for selector in (
            QPowerSelector(line_distances, a=2.0),
            SortedListSelector(line_distances, a=2.0),
        ):
            assert all(selector.choose(7, rng) != 7 for __ in range(200))

    def test_empirical_matches_declared_probabilities(self, line_distances):
        selector = QPowerSelector(line_distances, a=2.0)
        rng = random.Random(3)
        draws = 5000
        counts = Counter(selector.choose(10, rng) for __ in range(draws))
        for partner in (9, 11, 0, 19):
            expected = selector.probability(10, partner)
            assert counts[partner] / draws == pytest.approx(expected, abs=0.02)

    def test_equidistant_sites_equally_likely(self, line_distances):
        # From site 10, sites 9 and 11 are both at distance 1.
        for selector in (
            QPowerSelector(line_distances, a=2.0),
            SortedListSelector(line_distances, a=1.6),
        ):
            assert selector.probability(10, 9) == pytest.approx(
                selector.probability(10, 11)
            )


class TestSortedListSelector:
    def test_a2_integral_form_matches_closed_form(self, line_distances):
        """For a=2 equation (3.1.1) reduces to 1/((Q(d-1)+1)(Q(d)+1))."""
        selector = SortedListSelector(line_distances, a=2.0)
        s = 10
        d = 3  # sites 7 and 13: Q(2)=4, Q(3)=6
        q_prev = line_distances.q(s, d - 1)
        q_here = line_distances.q(s, d)
        expected_weight = 1.0 / ((q_prev + 1) * (q_here + 1))
        # Normalize by summing over all partners.
        total = 0.0
        others, dists = line_distances.others_by_distance(s)
        for other, dist in zip(others, dists):
            qp = line_distances.q(s, dist - 1)
            qh = line_distances.q(s, dist)
            total += 1.0 / ((qp + 1) * (qh + 1))
        assert selector.probability(s, 13) == pytest.approx(expected_weight / total)

    def test_exact_and_integral_forms_agree(self, line_distances):
        """The +1-corrected integral approximation tracks the exact sum
        within a constant factor and preserves the ordering."""
        integral = SortedListSelector(line_distances, a=1.6, form="integral")
        exact = SortedListSelector(line_distances, a=1.6, form="exact")
        ratios = []
        for partner in (1, 5, 12, 19):
            p_int = integral.probability(0, partner)
            p_exact = exact.probability(0, partner)
            assert p_int == pytest.approx(p_exact, rel=0.6)
            ratios.append(p_int / p_exact)
        probs_int = [integral.probability(0, p) for p in range(1, 20)]
        probs_exact = [exact.probability(0, p) for p in range(1, 20)]
        assert probs_int == sorted(probs_int, reverse=True)
        assert probs_exact == sorted(probs_exact, reverse=True)

    def test_a1_logarithmic_form(self, line_distances):
        selector = SortedListSelector(line_distances, a=1.0)
        total = sum(
            selector.probability(0, other)
            for other in line_distances.sites
            if other != 0
        )
        assert total == pytest.approx(1.0)

    def test_larger_a_is_more_local(self, line_distances):
        near_heavy = SortedListSelector(line_distances, a=2.0)
        near_light = SortedListSelector(line_distances, a=1.2)
        assert near_heavy.probability(0, 1) > near_light.probability(0, 1)
        assert near_heavy.probability(0, 19) < near_light.probability(0, 19)

    def test_invalid_form_rejected(self, line_distances):
        with pytest.raises(ValueError):
            SortedListSelector(line_distances, a=2.0, form="bogus")


class TestFactory:
    def test_all_kinds(self, line_distances):
        for kind in ("uniform", "dpower", "qpower", "dq", "paper", "paper-exact"):
            selector = selector_for(kind, distances=line_distances, a=1.5)
            rng = random.Random(0)
            assert selector.choose(0, rng) in line_distances.sites

    def test_unknown_kind(self, line_distances):
        with pytest.raises(ValueError):
            selector_for("bogus", distances=line_distances)

    def test_uniform_needs_sites_or_distances(self):
        with pytest.raises(ValueError):
            selector_for("uniform")

    def test_weighted_needs_distances(self):
        with pytest.raises(ValueError):
            selector_for("qpower")
