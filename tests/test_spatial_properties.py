"""Property-based tests of spatial selectors on random topologies."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import builders
from repro.topology.distance import SiteDistances
from repro.topology.spatial import (
    DistancePowerSelector,
    QDistanceSelector,
    QPowerSelector,
    SortedListSelector,
    UniformSelector,
)

SELECTOR_BUILDERS = [
    lambda d: UniformSelector(d.sites),
    lambda d: DistancePowerSelector(d, a=1.5),
    lambda d: QPowerSelector(d, a=2.0),
    lambda d: QDistanceSelector(d),
    lambda d: SortedListSelector(d, a=1.3),
    lambda d: SortedListSelector(d, a=2.0, form="exact"),
]


topology_strategy = st.builds(
    builders.random_connected,
    n=st.integers(4, 25),
    extra_edges=st.integers(0, 15),
    seed=st.integers(0, 1000),
)


class TestSelectorProperties:
    @given(topology=topology_strategy, index=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_probabilities_form_a_distribution(self, topology, index):
        distances = SiteDistances(topology)
        selector = SELECTOR_BUILDERS[index](distances)
        site = distances.sites[0]
        total = 0.0
        for other in distances.sites:
            p = selector.probability(site, other)
            assert p >= 0.0
            if other == site:
                assert p == 0.0
            total += p
        assert total == pytest.approx(1.0)

    @given(
        topology=topology_strategy,
        index=st.integers(0, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_choose_returns_valid_partner(self, topology, index, seed):
        distances = SiteDistances(topology)
        selector = SELECTOR_BUILDERS[index](distances)
        rng = random.Random(seed)
        site = distances.sites[seed % len(distances.sites)]
        for __ in range(20):
            partner = selector.choose(site, rng)
            assert partner in distances.sites
            assert partner != site

    @given(topology=topology_strategy)
    @settings(max_examples=30, deadline=None)
    def test_weighted_selectors_prefer_nearer_sites_on_average(self, topology):
        """For every non-uniform family, the expected partner distance
        is no larger than uniform's."""
        distances = SiteDistances(topology)
        site = distances.sites[0]

        def expected_distance(selector):
            return sum(
                selector.probability(site, other) * distances.distance(site, other)
                for other in distances.sites
                if other != site
            )

        uniform = expected_distance(UniformSelector(distances.sites))
        for build in SELECTOR_BUILDERS[1:]:
            assert expected_distance(build(distances)) <= uniform + 1e-9

    @given(topology=topology_strategy, seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_choices_deterministic_given_rng_state(self, topology, seed):
        distances = SiteDistances(topology)
        selector = SortedListSelector(distances, a=1.5)
        site = distances.sites[0]
        first = [selector.choose(site, random.Random(seed)) for __ in range(5)]
        second = [selector.choose(site, random.Random(seed)) for __ in range(5)]
        assert first == second
