"""The replica store: LWW merging, checksums, certificates (Sections 1.1-2)."""

import pytest

from repro.core.items import NIL, DeathCertificate, VersionedValue
from repro.core.store import ApplyResult

from conftest import make_store, ts


class TestClientOperations:
    def test_update_then_get(self, store):
        store.update("k", "v")
        assert store.get("k") == "v"
        assert "k" in store

    def test_get_missing_returns_none(self, store):
        assert store.get("ghost") is None

    def test_update_returns_shippable_update(self, store):
        update = store.update("k", "v")
        assert update.key == "k"
        assert update.entry.value == "v"

    def test_later_update_wins(self, store):
        store.update("k", "v1")
        store.update("k", "v2")
        assert store.get("k") == "v2"

    def test_update_rejects_nil(self, store):
        with pytest.raises(ValueError):
            store.update("k", NIL)
        with pytest.raises(ValueError):
            store.update("k", None)

    def test_update_rejects_bad_keys(self, store):
        with pytest.raises(ValueError):
            store.update(None, "v")
        with pytest.raises(TypeError):
            store.update(["bad"], "v")

    def test_delete_hides_key_from_clients(self, store):
        store.update("k", "v")
        store.delete("k")
        assert store.get("k") is None
        assert "k" not in store
        # ... but the certificate remains in the replication view.
        assert store.entry("k") is not None
        assert store.entry("k").is_deletion

    def test_delete_records_retention_sites(self, store):
        update = store.delete("k", retention_sites=(3, 7))
        assert update.entry.retention_sites == (3, 7)

    def test_visible_items_skip_deletions(self, store):
        store.update("a", 1)
        store.update("b", 2)
        store.delete("a")
        assert dict(store.visible_items()) == {"b": 2}
        assert store.visible_count() == 1
        assert len(store) == 2


class TestApplyEntry:
    def test_new_entry_applied(self, store):
        result = store.apply_entry("k", VersionedValue("v", ts(1)))
        assert result is ApplyResult.APPLIED
        assert result.was_news
        assert store.get("k") == "v"

    def test_newer_entry_supersedes(self, store):
        store.apply_entry("k", VersionedValue("old", ts(1)))
        result = store.apply_entry("k", VersionedValue("new", ts(2)))
        assert result is ApplyResult.APPLIED
        assert store.get("k") == "new"

    def test_stale_entry_rejected(self, store):
        store.apply_entry("k", VersionedValue("new", ts(2)))
        result = store.apply_entry("k", VersionedValue("old", ts(1)))
        assert result is ApplyResult.STALE
        assert not result.was_news
        assert store.get("k") == "new"

    def test_equal_entry_is_noop(self, store):
        entry = VersionedValue("v", ts(1))
        store.apply_entry("k", entry)
        assert store.apply_entry("k", entry) is ApplyResult.EQUAL

    def test_certificate_cancels_older_value(self, store):
        store.apply_entry("k", VersionedValue("v", ts(1)))
        cert = DeathCertificate(ts(2), ts(2))
        assert store.apply_entry("k", cert) is ApplyResult.APPLIED
        assert store.get("k") is None

    def test_newer_value_beats_certificate(self, store):
        store.apply_entry("k", DeathCertificate(ts(2), ts(2)))
        result = store.apply_entry("k", VersionedValue("reinstated", ts(3)))
        assert result is ApplyResult.APPLIED
        assert store.get("k") == "reinstated"

    def test_reactivation_adopted_for_same_certificate(self, store):
        cert = DeathCertificate(ts(2.0), ts(2.0))
        store.apply_entry("k", cert)
        awakened = cert.reactivated(now=9.0)
        result = store.apply_entry("k", awakened)
        assert result is ApplyResult.REACTIVATED
        assert store.entry("k").activation_timestamp.time == 9.0

    def test_older_activation_not_adopted(self, store):
        cert = DeathCertificate(ts(2.0), ts(2.0))
        awakened = cert.reactivated(now=9.0)
        store.apply_entry("k", awakened)
        assert store.apply_entry("k", cert) is ApplyResult.EQUAL
        assert store.entry("k").activation_timestamp.time == 9.0


class TestDormantCertificates:
    def _store_with_dormant_cert(self, retention_site: int = 0):
        store = make_store(retention_site)
        store.update("k", "v")
        store.delete("k", retention_sites=(retention_site,))
        # Age past tau1 so the sweep makes the certificate dormant.
        for __ in range(20):
            store.clock.next_timestamp()
        stats = store.sweep_certificates(tau1=5.0, tau2=1000.0)
        assert stats.made_dormant == 1
        return store

    def test_sweep_moves_certificate_to_dormant(self):
        store = self._store_with_dormant_cert()
        assert store.entry("k") is None
        assert store.dormant_certificate("k") is not None
        assert store.dormant_count() == 1

    def test_sweep_drops_certificate_at_non_retention_site(self):
        store = make_store(5)
        store.delete("k", retention_sites=(1, 2))
        for __ in range(20):
            store.clock.next_timestamp()
        stats = store.sweep_certificates(tau1=5.0, tau2=1000.0)
        assert stats.expired == 1
        assert stats.made_dormant == 0
        assert store.dormant_count() == 0

    def test_obsolete_item_awakens_dormant_certificate(self):
        store = self._store_with_dormant_cert()
        obsolete = VersionedValue("zombie", ts(0.5))
        result = store.apply_entry("k", obsolete)
        assert result is ApplyResult.RESURRECTION_BLOCKED
        assert store.get("k") is None
        # The certificate is active again with a fresh activation stamp.
        entry = store.entry("k")
        assert entry.is_deletion
        assert entry.activation_timestamp > entry.timestamp
        assert store.dormant_certificate("k") is None

    def test_reinstatement_clears_dormant_certificate(self):
        store = self._store_with_dormant_cert()
        newer = VersionedValue("back", ts(1e9))
        assert store.apply_entry("k", newer) is ApplyResult.APPLIED
        assert store.get("k") == "back"
        assert store.dormant_certificate("k") is None

    def test_newer_certificate_replaces_dormant(self):
        store = self._store_with_dormant_cert()
        newer_cert = DeathCertificate(ts(1e9), ts(1e9))
        assert store.apply_entry("k", newer_cert) is ApplyResult.APPLIED
        assert store.dormant_certificate("k") is None
        assert store.entry("k") is newer_cert

    def test_dormant_certificate_discarded_after_tau2(self):
        store = self._store_with_dormant_cert()
        for __ in range(50):
            store.clock.next_timestamp()
        stats = store.sweep_certificates(tau1=5.0, tau2=10.0)
        assert stats.discarded_dormant == 1
        assert store.dormant_count() == 0
        # Resurrection now succeeds — the protection window has closed.
        assert store.apply_entry("k", VersionedValue("zombie", ts(0.5))).was_news


class TestChecksumInvariant:
    def test_checksum_tracks_all_mutations(self, store):
        assert store.checksum == store.recompute_checksum() == 0
        store.update("a", 1)
        assert store.checksum == store.recompute_checksum()
        store.update("a", 2)
        assert store.checksum == store.recompute_checksum()
        store.delete("a")
        assert store.checksum == store.recompute_checksum()
        store.purge("a")
        assert store.checksum == store.recompute_checksum() == 0

    def test_equal_content_means_equal_checksum(self):
        a = make_store(0)
        b = make_store(1)
        update = a.update("k", "v")
        b.apply_entry(update.key, update.entry)
        assert a.checksum == b.checksum

    def test_checksum_ignores_activation_difference(self):
        a = make_store(0)
        b = make_store(1)
        update = a.delete("k")
        b.apply_entry(update.key, update.entry)
        b.apply_entry(update.key, update.entry.reactivated(now=99.0))
        assert a.checksum == b.checksum
        assert a.agrees_with(b)


class TestOrderedViews:
    def test_updates_newest_first(self, store):
        store.update("a", 1)
        store.update("b", 2)
        store.update("c", 3)
        keys = [u.key for u in store.updates_newest_first()]
        assert keys == ["c", "b", "a"]

    def test_recent_updates_respects_tau(self):
        store = make_store(0)
        store.update("old", 1)       # time 1
        for __ in range(10):
            store.clock.next_timestamp()   # advance to 11
        store.update("new", 2)       # time 12
        recent = store.recent_updates(tau=3.0)
        assert [u.key for u in recent] == ["new"]
        everything = store.recent_updates(tau=1000.0)
        assert {u.key for u in everything} == {"old", "new"}

    def test_recent_updates_include_certificates(self):
        store = make_store(0)
        store.delete("gone")
        recent = store.recent_updates(tau=100.0)
        assert recent[0].entry.is_deletion


class TestAgreement:
    def test_agrees_with_self_copy(self):
        a = make_store(0)
        b = make_store(1)
        for update in [a.update("x", 1), a.update("y", 2), a.delete("x")]:
            b.apply_entry(update.key, update.entry)
        assert a.agrees_with(b)
        assert b.agrees_with(a)

    def test_disagrees_on_extra_key(self):
        a = make_store(0)
        b = make_store(1)
        a.update("x", 1)
        assert not a.agrees_with(b)

    def test_disagrees_on_different_value_timestamps(self):
        a = make_store(0)
        b = make_store(1)
        a.update("x", 1)
        b.update("x", 1)
        assert not a.agrees_with(b)  # different sites, different stamps

    def test_purge_missing_key_returns_false(self, store):
        assert store.purge("ghost") is False
