"""Property-based tests of the replica-store merge semantics.

The key theorem behind every algorithm in the paper: last-writer-wins
merging of ``(value, timestamp)`` pairs is a join semilattice, so any
replicas that see the same set of updates — in any order, with any
duplication — converge to the same state.
"""

from hypothesis import given, settings, strategies as st

from repro.core.items import DeathCertificate, VersionedValue
from repro.core.store import ReplicaStore
from repro.core.timestamps import SequenceClock, Timestamp


def _entry_for(stamp: Timestamp):
    """Derive entry content deterministically from its timestamp.

    The paper's timestamps are globally unique, so one timestamp can
    never name two different updates; deriving content from the stamp
    lets the strategy generate duplicates (same update seen twice)
    without ever violating that precondition.
    """
    selector = hash(stamp) % 4
    if selector == 0:
        return DeathCertificate(stamp, stamp)
    return VersionedValue(value=hash(stamp) % 100, timestamp=stamp)


def entry_strategy():
    stamps = st.builds(
        Timestamp,
        time=st.floats(0, 1000, allow_nan=False),
        site=st.integers(0, 5),
        sequence=st.integers(0, 5),
    )
    return stamps.map(_entry_for)


updates_strategy = st.lists(
    st.tuples(st.integers(0, 5), entry_strategy()), max_size=40
)


def fresh_store(site: int = 0) -> ReplicaStore:
    return ReplicaStore(site_id=site, clock=SequenceClock(site=site))


def state_of(store: ReplicaStore):
    return {
        key: (entry.timestamp, entry.is_deletion,
              None if entry.is_deletion else entry.value)
        for key, entry in store.entries()
    }


class TestConvergenceProperties:
    @given(updates_strategy, st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_order_independence(self, updates, rng):
        """Any permutation of the same update set converges identically."""
        a = fresh_store(0)
        for key, entry in updates:
            a.apply_entry(key, entry)
        shuffled = list(updates)
        rng.shuffle(shuffled)
        b = fresh_store(1)
        for key, entry in shuffled:
            b.apply_entry(key, entry)
        assert state_of(a) == state_of(b)
        assert a.checksum == b.checksum

    @given(updates_strategy)
    @settings(max_examples=60)
    def test_idempotence(self, updates):
        """Applying the whole history twice changes nothing."""
        a = fresh_store(0)
        for key, entry in updates:
            a.apply_entry(key, entry)
        once = state_of(a)
        checksum_once = a.checksum
        for key, entry in updates:
            a.apply_entry(key, entry)
        assert state_of(a) == once
        assert a.checksum == checksum_once

    @given(updates_strategy, updates_strategy)
    @settings(max_examples=60)
    def test_merge_is_commutative_across_replicas(self, left, right):
        """apply(left); apply(right) == apply(right); apply(left)."""
        a = fresh_store(0)
        for key, entry in left + right:
            a.apply_entry(key, entry)
        b = fresh_store(1)
        for key, entry in right + left:
            b.apply_entry(key, entry)
        assert state_of(a) == state_of(b)

    @given(updates_strategy)
    @settings(max_examples=60)
    def test_winner_has_maximal_timestamp_per_key(self, updates):
        store = fresh_store(0)
        for key, entry in updates:
            store.apply_entry(key, entry)
        best: dict = {}
        for key, entry in updates:
            if key not in best or entry.timestamp > best[key]:
                best[key] = entry.timestamp
        for key, stamp in best.items():
            assert store.entry(key).timestamp == stamp

    @given(updates_strategy)
    @settings(max_examples=60)
    def test_checksum_invariant_maintained(self, updates):
        store = fresh_store(0)
        for key, entry in updates:
            store.apply_entry(key, entry)
            assert store.checksum == store.recompute_checksum()

    @given(updates_strategy)
    @settings(max_examples=60)
    def test_index_matches_entries(self, updates):
        store = fresh_store(0)
        for key, entry in updates:
            store.apply_entry(key, entry)
        listed = {u.key: u.entry.timestamp for u in store.updates_newest_first()}
        actual = {key: entry.timestamp for key, entry in store.entries()}
        assert listed == actual
        # And the iteration really is newest first.
        stamps = [u.entry.timestamp for u in store.updates_newest_first()]
        assert stamps == sorted(stamps, reverse=True)

    @given(updates_strategy)
    @settings(max_examples=40)
    def test_anti_entropy_between_two_replicas_converges(self, updates):
        """Exchanging full contents makes two divergent replicas equal."""
        from repro.protocols.exchange import resolve_difference

        a = fresh_store(0)
        b = fresh_store(1)
        for i, (key, entry) in enumerate(updates):
            (a if i % 2 else b).apply_entry(key, entry)
        resolve_difference(a, b)
        assert state_of(a) == state_of(b)
        assert a.agrees_with(b)
