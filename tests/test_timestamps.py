"""Timestamps: total order, uniqueness, clocks (Section 1.1)."""

import pytest

from repro.core.timestamps import (
    SequenceClock,
    SimClock,
    Timestamp,
    is_strictly_increasing,
    merge_max,
)


class TestTimestampOrdering:
    def test_orders_by_time_first(self):
        assert Timestamp(1.0, site=9, sequence=9) < Timestamp(2.0, site=0, sequence=0)

    def test_ties_broken_by_site(self):
        assert Timestamp(1.0, site=0, sequence=5) < Timestamp(1.0, site=1, sequence=0)

    def test_ties_broken_by_sequence_last(self):
        assert Timestamp(1.0, site=0, sequence=0) < Timestamp(1.0, site=0, sequence=1)

    def test_equality_requires_all_fields(self):
        assert Timestamp(1.0, 2, 3) == Timestamp(1.0, 2, 3)
        assert Timestamp(1.0, 2, 3) != Timestamp(1.0, 2, 4)

    def test_total_order_is_antisymmetric(self):
        a = Timestamp(1.0, 0, 0)
        b = Timestamp(1.0, 1, 0)
        assert (a < b) != (b < a)

    def test_min_sentinel_precedes_everything(self):
        assert Timestamp.MIN < Timestamp(float("-1e300"), -1, 0)

    def test_hashable_and_usable_as_dict_key(self):
        d = {Timestamp(1.0, 0, 0): "x"}
        assert d[Timestamp(1.0, 0, 0)] == "x"


class TestTimestampOperations:
    def test_advanced_to_moves_only_time(self):
        stamp = Timestamp(1.0, site=3, sequence=7)
        moved = stamp.advanced_to(42.0)
        assert moved.time == 42.0
        assert moved.site == 3
        assert moved.sequence == 7

    def test_age_relative_to_clock(self):
        assert Timestamp(10.0).age(now=25.0) == 15.0

    def test_encode_is_injective_on_distinct_stamps(self):
        stamps = [Timestamp(t, s, q) for t in (1.0, 2.0) for s in (0, 1) for q in (0, 1)]
        encodings = {stamp.encode() for stamp in stamps}
        assert len(encodings) == len(stamps)

    def test_merge_max_returns_largest(self):
        a, b, c = Timestamp(1.0), Timestamp(3.0), Timestamp(2.0)
        assert merge_max(a, b, c) == b

    def test_merge_max_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_max()


class TestSequenceClock:
    def test_stamps_strictly_increase(self):
        clock = SequenceClock(site=1)
        stamps = [clock.next_timestamp() for __ in range(20)]
        assert is_strictly_increasing(iter(stamps))

    def test_now_tracks_issued_time(self):
        clock = SequenceClock()
        assert clock.now() == 0.0
        clock.next_timestamp()
        assert clock.now() == 1.0

    def test_two_clocks_never_collide(self):
        a = SequenceClock(site=1)
        b = SequenceClock(site=2)
        stamps = [a.next_timestamp() for __ in range(10)]
        stamps += [b.next_timestamp() for __ in range(10)]
        assert len(set(stamps)) == 20


class TestSimClock:
    def test_follows_time_source(self):
        time = [0.0]
        clock = SimClock(site=0, time_source=lambda: time[0])
        assert clock.now() == 0.0
        time[0] = 5.0
        assert clock.now() == 5.0

    def test_skew_offsets_now(self):
        clock = SimClock(site=0, time_source=lambda: 10.0, skew=0.25)
        assert clock.now() == 10.25

    def test_same_instant_stamps_are_unique_and_increasing(self):
        clock = SimClock(site=0, time_source=lambda: 7.0)
        stamps = [clock.next_timestamp() for __ in range(5)]
        assert is_strictly_increasing(iter(stamps))
        assert all(s.time == 7.0 for s in stamps)

    def test_monotone_under_backwards_time_source(self):
        time = [10.0]
        clock = SimClock(site=0, time_source=lambda: time[0])
        first = clock.next_timestamp()
        time[0] = 5.0  # time source glitches backwards
        second = clock.next_timestamp()
        assert first < second

    def test_clocks_at_different_sites_unique_at_same_instant(self):
        a = SimClock(site=0, time_source=lambda: 1.0)
        b = SimClock(site=1, time_source=lambda: 1.0)
        assert a.next_timestamp() != b.next_timestamp()
