"""Wire version negotiation and trace-context interop.

Covers the three layers of the v2 trace-context field: the codec
(``version``/``max_version`` stamping and lenient span decoding), a
hand-rolled v1 peer talking to a live node over a real socket (old
peers must see pure v1 frames, never ``spans``), and the end-to-end
acceptance criterion — a live 3-node trace reconstructs a complete
infection tree whose numbers match the convergence report.
"""

import asyncio
import json
import struct

import pytest

from repro.net.node import NodeConfig
from repro.net.peer import RetryPolicy
from repro.net.runner import LiveCluster, live_demo
from repro.net.wire import (
    BASE_VERSION,
    HEADER_BYTES,
    PROTOCOL_VERSION,
    TRACE_WIRE_VERSION,
    Message,
    MessageType,
    decode_body,
    encode_message,
    negotiated_version,
    payload_span_contexts,
)
from repro.obs.convergence import ConvergenceTracker
from repro.obs.events import EventKind, RingBufferSink, read_trace
from repro.obs.lineage import LineageIndex, render_analysis
from repro.obs.spans import SPAN_FIELDS, SpanContext

FAST = NodeConfig(
    anti_entropy_interval=0.05,
    rumor_interval=0.02,
    retry=RetryPolicy(connect_timeout=1.0, io_timeout=2.0, attempts=2),
)

BOUND_SECONDS = 15.0
KEY = "printer:bldg-35"


class TestVersionCodec:
    def test_defaults_advertise_the_ceiling(self):
        message = Message(MessageType.PUSH, sender=0)
        assert message.version == BASE_VERSION == 1
        assert message.max_version == PROTOCOL_VERSION == 4
        assert TRACE_WIRE_VERSION == 2

    def test_encode_writes_both_version_fields(self):
        body = json.loads(encode_message(Message(MessageType.ACK, 0))[HEADER_BYTES:])
        assert body["v"] == 1
        assert body["max"] == PROTOCOL_VERSION

    def test_v1_frame_without_max_decodes_as_a_v1_peer(self):
        body = json.dumps(
            {"v": 1, "type": "ack", "sender": 0, "payload": {}}
        ).encode()
        message = decode_body(body)
        assert message.version == 1
        assert message.max_version == 1
        assert negotiated_version(message) == 1

    def test_max_advert_negotiates_up(self):
        body = json.dumps(
            {"v": 1, "max": 2, "type": "ack", "sender": 0, "payload": {}}
        ).encode()
        message = decode_body(body)
        assert message.max_version == 2
        assert negotiated_version(message) == 2
        # ... but never above our own ceiling.
        assert negotiated_version(message, ours=1) == 1

    @pytest.mark.parametrize("bad_max", ["two", True, 1.5])
    def test_garbage_max_degrades_to_the_stamped_version(self, bad_max):
        body = json.dumps(
            {"v": 1, "max": bad_max, "type": "ack", "sender": 0, "payload": {}}
        ).encode()
        assert decode_body(body).max_version == 1

    def test_max_is_clamped_to_at_least_the_stamped_version(self):
        body = json.dumps(
            {"v": 2, "max": 1, "type": "ack", "sender": 0, "payload": {}}
        ).encode()
        assert decode_body(body).max_version == 2


class TestPayloadSpanContexts:
    def test_absent_field_means_a_v1_peer(self):
        assert payload_span_contexts({}, 3) == [None, None, None]

    def test_wrong_length_is_discarded_wholesale(self):
        payload = {"spans": [{"trace": "t"}]}
        assert payload_span_contexts(payload, 2) == [None, None]

    def test_non_list_is_discarded(self):
        assert payload_span_contexts({"spans": "zip"}, 1) == [None]

    def test_mixed_good_and_bad_items(self):
        payload = {"spans": [{"trace": "t", "hop": 1, "sent_at": 2.0}, "junk"]}
        assert payload_span_contexts(payload, 2) == [
            SpanContext(trace="t", hop=1, sent_at=2.0),
            None,
        ]


async def raw_call(host, port, body: dict) -> dict:
    """Speak the wire by hand — what a from-source v1 build would send."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        blob = json.dumps(body).encode()
        writer.write(struct.pack(">I", len(blob)) + blob)
        await writer.drain()
        (length,) = struct.unpack(">I", await reader.readexactly(HEADER_BYTES))
        return json.loads(await reader.readexactly(length))
    finally:
        writer.close()


class TestOldPeerInterop:
    def test_v1_peer_gets_v1_frames_and_no_spans(self):
        """A strict v1 peer (no ``max`` key) pulls real data and sees a
        pure v1 reply with no trace contexts attached."""

        async def scenario():
            cluster = await LiveCluster.launch(2, FAST)
            try:
                await cluster.inject(0, KEY, "10.0.7.12")
                info = cluster.membership.get(0)
                v1 = await raw_call(
                    info.host,
                    info.port,
                    {
                        "v": 1,
                        "type": "pull-request",
                        "sender": 99,
                        "payload": {"mode": "pull"},
                    },
                )
                v2 = await raw_call(
                    info.host,
                    info.port,
                    {
                        "v": 1,
                        "max": 2,
                        "type": "pull-request",
                        "sender": 98,
                        "payload": {"mode": "pull"},
                    },
                )
            finally:
                await cluster.stop()
            return v1, v2

        v1, v2 = asyncio.run(scenario())
        assert v1["type"] == "pull-reply"
        assert v1["v"] == 1
        assert len(v1["payload"]["updates"]) == 1
        assert "spans" not in v1["payload"]

        # The same exchange with a v2 advert upgrades the reply.
        assert v2["type"] == "pull-reply"
        assert v2["v"] == 2
        assert len(v2["payload"]["updates"]) == 1
        spans = v2["payload"]["spans"]
        assert len(spans) == 1
        assert spans[0]["trace"].startswith(f"{KEY}@")
        assert spans[0]["hop"] == 0  # node 0 is the injection origin

    def test_peers_upgrade_each_other_to_the_ceiling(self):
        async def scenario():
            sink = RingBufferSink()
            cluster = await LiveCluster.launch(3, FAST)
            cluster.bus.add_sink(sink)
            try:
                await cluster.inject(0, KEY, "x")
                await cluster.wait_converged(KEY, timeout=BOUND_SECONDS)
                versions = {
                    node_id: dict(node._peer_versions)
                    for node_id, node in cluster.nodes.items()
                }
            finally:
                await cluster.stop()
            return sink, versions

        sink, versions = asyncio.run(scenario())
        for node_id, peers in versions.items():
            roster_peers = {p: v for p, v in peers.items() if p >= 0}
            assert roster_peers, f"node {node_id} never heard from a peer"
            assert all(v == PROTOCOL_VERSION for v in roster_peers.values())
        spans = sink.of_kind(EventKind.DELIVERY_SPAN)
        deliveries = [e for e in spans if e.payload["src"] is not None]
        assert deliveries
        # Once negotiated, trace contexts ride the wire: at least some
        # deliveries carry the sender's clock.
        assert any(e.payload["sent_at"] is not None for e in deliveries)


class TestLiveRoundTrip:
    def test_trace_reconstructs_the_complete_infection_tree(self, tmp_path):
        """The PR's acceptance criterion, end to end: a live 3-node
        trace yields a complete tree (every node exactly once as a
        first-delivery edge) with per-hop latency, the analysis is
        deterministic, and its times equal the live report's."""
        trace = tmp_path / "run.jsonl"
        report = asyncio.run(
            live_demo(nodes=3, config=FAST, timeout=BOUND_SECONDS, trace_file=str(trace))
        )
        assert report.converged

        events = list(read_trace(trace))
        index = LineageIndex.from_events(events)
        assert index.n == 3 and index.key == KEY
        tree = index.tree_for_key(KEY)
        assert tree is not None
        assert tree.complete(3)
        assert tree.infected() == [0, 1, 2]
        assert not tree.duplicate_first
        assert tree.root == 0
        for node in (1, 2):
            latency = tree.hop_latency(node)
            assert latency is not None and latency >= 0.0
            assert tree.depth_of(node) is not None

        # Span first-delivery times are the same timestamps the
        # convergence report was computed from — replay equals live.
        replayed = ConvergenceTracker.from_events(iter(events))
        injected_at = tree.first_delivery[0].time
        for node in (1, 2):
            assert tree.first_delivery[node].time - injected_at == replayed.delay_of(
                node
            )

        # Pure function of the trace: analyzing twice is identical.
        again = LineageIndex.from_events(read_trace(trace))
        assert again.to_dict() == index.to_dict()
        assert render_analysis(again) == render_analysis(index)

    def test_sim_and_live_emit_the_same_span_schema(self, tmp_path):
        from repro.cluster.cluster import Cluster
        from repro.protocols.direct_mail import DirectMailProtocol

        trace = tmp_path / "run.jsonl"
        asyncio.run(
            live_demo(nodes=3, config=FAST, timeout=BOUND_SECONDS, trace_file=str(trace))
        )
        live_spans = [
            e for e in read_trace(trace) if e.kind is EventKind.DELIVERY_SPAN
        ]
        assert live_spans

        cluster = Cluster(n=3, seed=0)
        cluster.add_protocol(DirectMailProtocol())
        sink = cluster.bus.add_sink(RingBufferSink())
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()
        sim_spans = sink.of_kind(EventKind.DELIVERY_SPAN)
        assert sim_spans

        for event in live_spans + sim_spans:
            assert tuple(event.payload) == SPAN_FIELDS
