"""Epidemic tracing: S/I/R census and news logs."""

import pytest

from repro.cluster.cluster import Cluster
from repro.protocols.base import ExchangeMode
from repro.protocols.direct_mail import DirectMailProtocol
from repro.protocols.rumor import RumorConfig, RumorMongeringProtocol
from repro.sim.tracing import EpidemicTracer, NewsLog


def traced_cluster(n=200, k=3, seed=0, mode=ExchangeMode.PUSH):
    cluster = Cluster(n=n, seed=seed)
    rumor = RumorMongeringProtocol(RumorConfig(mode=mode, k=k))
    tracer = EpidemicTracer(rumor, key="k")
    cluster.add_protocol(rumor)
    cluster.add_protocol(tracer)
    return cluster, rumor, tracer


class TestCensus:
    def test_counts_partition_population(self):
        cluster, rumor, tracer = traced_cluster()
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(5)
        for census in tracer.history:
            assert census.susceptible + census.infective + census.removed == 200
            assert census.s + census.i + census.r == pytest.approx(1.0)

    def test_initial_state_one_infective(self):
        cluster, rumor, tracer = traced_cluster()
        cluster.inject_update(0, "k", "v")
        census = tracer.sample()
        assert census.infective == 1
        assert census.susceptible == 199
        assert census.removed == 0

    def test_epidemic_curve_shape(self):
        """s decreases monotonically; i rises then falls to zero; the
        removed fraction ends near 1 - residue."""
        cluster, rumor, tracer = traced_cluster(seed=2)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_until(lambda: not rumor.active, max_cycles=100)
        s_values = [c.s for c in tracer.history]
        assert all(a >= b for a, b in zip(s_values, s_values[1:]))
        peak = tracer.peak_infective()
        assert peak.infective > 1
        final = tracer.final()
        assert final.infective == 0
        assert final.s == pytest.approx(cluster.metrics.residue, abs=1e-9)

    def test_curve_matches_ode_residue(self):
        """The stochastic endpoint lands near the ODE fixed point for
        the feedback+coin variant."""
        from repro.analysis.epidemic_theory import rumor_residue

        cluster = Cluster(n=1000, seed=3)
        rumor = RumorMongeringProtocol(
            RumorConfig(mode=ExchangeMode.PUSH, feedback=True, counter=False, k=2)
        )
        tracer = EpidemicTracer(rumor, key="k")
        cluster.add_protocol(rumor)
        cluster.add_protocol(tracer)
        cluster.inject_update(0, "k", "v")
        cluster.run_until(lambda: not rumor.active, max_cycles=200)
        assert tracer.final().s == pytest.approx(rumor_residue(2), abs=0.06)

    def test_sample_before_history(self):
        cluster, rumor, tracer = traced_cluster()
        with pytest.raises(ValueError):
            tracer.final()
        with pytest.raises(ValueError):
            tracer.peak_infective()

    def test_curve_export(self):
        cluster, rumor, tracer = traced_cluster()
        cluster.inject_update(0, "k", "v")
        cluster.run_cycles(3)
        curve = tracer.curve()
        assert len(curve) == 3
        cycle, s, i, r = curve[0]
        assert cycle == 1


class TestClusterEvents:
    def test_simulator_emits_the_shared_event_stream(self):
        """The sim side of the unified bus: injections, receipts, the
        census, and cycle markers all land as typed events, and the
        shared tracker recomputes the cluster's own metrics from them."""
        from repro.obs.convergence import ConvergenceTracker
        from repro.obs.events import EventKind, RingBufferSink

        cluster, rumor, tracer = traced_cluster(n=50, seed=7)
        sink = RingBufferSink()
        cluster.bus.add_sink(sink)
        tracked = ConvergenceTracker(n=50, key="k")
        cluster.bus.add_sink(tracked.observe)
        cluster.inject_update(0, "k", "v", track=True)
        cluster.run_cycles(30)

        injected = sink.of_kind(EventKind.UPDATE_INJECTED)
        assert [e.node for e in injected] == [0]
        assert injected[0].payload == {"key": "k", "deletion": False}
        census = sink.of_kind(EventKind.CENSUS)
        assert len(census) == 30
        assert census[0].payload["cycle"] == 1
        cycles = sink.of_kind(EventKind.CYCLE_COMPLETED)
        assert [e.payload["cycle"] for e in cycles] == list(range(1, 31))
        # Event time in the simulator is the cycle number, so the
        # tracker's delays come out in cycles — same as the metrics.
        metrics = cluster.metrics
        assert tracked.infected == metrics.infected
        assert tracked.receipt_times == metrics.receipt_times
        assert tracked.t_last == metrics.t_last


class TestNewsLog:
    def test_records_first_deliveries(self):
        cluster = Cluster(n=10, seed=4)
        log = NewsLog()
        cluster.add_protocol(log)
        cluster.add_protocol(DirectMailProtocol())
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()
        receipts = log.first_receipts("k")
        assert set(receipts) == set(range(1, 10))
        assert all(cycle == 1 for cycle in receipts.values())

    def test_filters_by_key(self):
        cluster = Cluster(n=5, seed=5)
        log = NewsLog()
        cluster.add_protocol(log)
        cluster.add_protocol(DirectMailProtocol())
        cluster.inject_update(0, "a", 1)
        cluster.inject_update(1, "b", 2)
        cluster.run_cycle()
        assert all(e.key == "a" for e in log.events_for("a"))
        assert len(log.events_for("a")) == 4

    def test_sees_anti_entropy_deliveries(self):
        """The log is a span-stream view, so exchange-mediated first
        deliveries land in it exactly like targeted mail does."""
        from repro.protocols.anti_entropy import (
            AntiEntropyConfig,
            AntiEntropyProtocol,
        )

        cluster = Cluster(n=12, seed=8)
        log = NewsLog()
        cluster.add_protocol(log)
        cluster.add_protocol(
            AntiEntropyProtocol(config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL))
        )
        cluster.inject_update(0, "k", "v", track=True)
        metrics = cluster.metrics
        cluster.run_until(lambda: metrics.infected == 12, max_cycles=60)
        receipts = log.first_receipts("k")
        assert set(receipts) == set(range(1, 12))  # injection is not a delivery
        assert receipts == {
            site: int(t) for site, t in metrics.receipt_times.items() if site != 0
        }

    def test_capacity_bounds_memory(self):
        cluster = Cluster(n=50, seed=6)
        log = NewsLog(capacity=10)
        cluster.add_protocol(log)
        cluster.add_protocol(DirectMailProtocol())
        cluster.inject_update(0, "k", "v")
        cluster.run_cycle()
        assert len(log.events) == 10
        assert log.dropped == 39
