"""Per-link traffic scaling for d^-a on a line (Section 3)."""

import pytest

from repro.analysis.traffic import (
    expected_mean_link_traffic,
    line_traffic_class,
    line_traffic_per_link,
    theoretical_growth,
)


class TestExactComputation:
    def test_two_sites(self):
        loads = line_traffic_per_link(2, a=2.0)
        assert loads == [pytest.approx(2.0)]  # both sites cross the link

    def test_load_conservation(self):
        """Total link-crossings equal the expected sum of distances."""
        n, a = 10, 1.5
        loads = line_traffic_per_link(n, a)
        expected_total = 0.0
        for s in range(n):
            weights = [
                (abs(s - t)) ** (-a) if t != s else 0.0 for t in range(n)
            ]
            total_weight = sum(weights)
            expected_total += sum(
                w / total_weight * abs(s - t) for t, w in enumerate(weights)
            )
        assert sum(loads) == pytest.approx(expected_total)

    def test_middle_links_busiest(self):
        loads = line_traffic_per_link(20, a=1.0)
        middle = loads[len(loads) // 2]
        assert middle > loads[0]
        assert middle > loads[-1]

    def test_requires_two_sites(self):
        with pytest.raises(ValueError):
            line_traffic_per_link(1, a=2.0)


class TestScalingClasses:
    def test_class_labels(self):
        assert line_traffic_class(0.5) == "O(n)"
        assert line_traffic_class(1.0) == "O(n/log n)"
        assert line_traffic_class(1.5) == "O(n^0.5)"
        assert line_traffic_class(2.0) == "O(log n)"
        assert line_traffic_class(3.0) == "O(1)"

    @pytest.mark.parametrize(
        "a", [0.5, 1.5, 2.0, 3.0]
    )
    def test_measured_growth_tracks_predicted_class(self, a):
        """mean link traffic ratio between n=200 and n=50 should match
        the predicted growth class within a modest factor."""
        small = expected_mean_link_traffic(50, a)
        large = expected_mean_link_traffic(200, a)
        measured_ratio = large / small
        predicted_ratio = theoretical_growth(200, a) / theoretical_growth(50, a)
        assert measured_ratio == pytest.approx(predicted_ratio, rel=0.5)

    def test_uniform_grows_linearly(self):
        # a=0 is uniform selection: traffic per link ~ O(n).
        small = expected_mean_link_traffic(40, 0.0)
        large = expected_mean_link_traffic(160, 0.0)
        assert large / small == pytest.approx(4.0, rel=0.2)

    def test_a3_traffic_bounded(self):
        values = [expected_mean_link_traffic(n, 3.0) for n in (25, 50, 100, 200)]
        assert max(values) / min(values) < 1.7

    def test_ordering_at_fixed_n(self):
        """Tighter distributions always generate less link traffic."""
        values = [expected_mean_link_traffic(100, a) for a in (0.0, 1.0, 2.0, 3.0)]
        assert values == sorted(values, reverse=True)

    def test_theoretical_growth_validates(self):
        with pytest.raises(ValueError):
            theoretical_growth(1, 2.0)
