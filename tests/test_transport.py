"""Connection limits, rejection and hunting (Section 1.4)."""

import random

import pytest

from repro.sim.transport import ConnectionLedger, ConnectionPolicy, UNLIMITED


class TestConnectionPolicy:
    def test_unlimited_default(self):
        assert UNLIMITED.unlimited
        assert UNLIMITED.hunt_limit == 0

    def test_rejects_zero_limit(self):
        with pytest.raises(ValueError):
            ConnectionPolicy(connection_limit=0)

    def test_rejects_negative_hunt(self):
        with pytest.raises(ValueError):
            ConnectionPolicy(connection_limit=1, hunt_limit=-1)


class TestLedger:
    def test_unlimited_accepts_everything(self):
        ledger = ConnectionLedger(UNLIMITED)
        assert all(ledger.try_connect(7) for __ in range(100))
        assert ledger.rejections == 0

    def test_limit_one_rejects_second_connection(self):
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=1))
        assert ledger.try_connect(7)
        assert not ledger.try_connect(7)
        assert ledger.rejections == 1
        assert ledger.accepted_by(7) == 1

    def test_limit_is_per_target(self):
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=1))
        assert ledger.try_connect(7)
        assert ledger.try_connect(8)

    def test_limit_two(self):
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=2))
        assert ledger.try_connect(7)
        assert ledger.try_connect(7)
        assert not ledger.try_connect(7)

    def test_reset_restores_capacity(self):
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=1))
        ledger.try_connect(7)
        ledger.reset()
        assert ledger.try_connect(7)

    def test_attempt_counter(self):
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=1))
        ledger.try_connect(7)
        ledger.try_connect(7)
        assert ledger.attempts == 2


class TestHunting:
    def test_no_hunting_gives_up_after_first_rejection(self):
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=1, hunt_limit=0))
        ledger.try_connect(7)
        partner = ledger.connect_with_hunting(lambda s: 7, initiator=0)
        assert partner is None

    def test_hunting_retries_other_partners(self):
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=1, hunt_limit=3))
        ledger.try_connect(7)  # 7 is busy
        candidates = iter([7, 7, 8])
        partner = ledger.connect_with_hunting(lambda s: next(candidates), initiator=0)
        assert partner == 8

    def test_hunting_respects_limit(self):
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=1, hunt_limit=2))
        ledger.try_connect(7)
        attempts = []

        def chooser(s):
            attempts.append(s)
            return 7

        assert ledger.connect_with_hunting(chooser, initiator=0) is None
        assert len(attempts) == 3  # initial try + 2 hunts

    def test_chooser_returning_none_aborts(self):
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=1, hunt_limit=5))
        assert ledger.connect_with_hunting(lambda s: None, initiator=0) is None

    def test_infinite_hunt_limit_approximates_permutation(self):
        # Connection limit 1 with a generous hunt limit: all initiators
        # find distinct partners (the paper's permutation observation).
        rng = random.Random(1)
        n = 30
        ledger = ConnectionLedger(ConnectionPolicy(connection_limit=1, hunt_limit=500))
        partners = []
        for initiator in range(n):
            partner = ledger.connect_with_hunting(
                lambda s: rng.randrange(n), initiator
            )
            partners.append(partner)
        assert None not in partners
        assert len(set(partners)) == n
