"""Hierarchical-checksum wire interop (protocol v3).

Three guarantees, each over real sockets: old v1/v2 peers keep working
against a hierarchical node (and are never shown TREE frames or
bucket-scoped payloads), two v3 nodes drill down the checksum tree and
ship only dirty buckets, and the live runtime's merge result is
byte-for-byte the same database the simulator's
``HierarchicalChecksum`` produces from identical starting states.
"""

import asyncio
import json
import struct

from repro.core.items import make_entry
from repro.core.store import ReplicaStore
from repro.core.timestamps import SequenceClock, Timestamp
from repro.net.node import NodeConfig
from repro.net.peer import RetryPolicy
from repro.net.runner import LiveCluster
from repro.net.wire import HEADER_BYTES, PROTOCOL_VERSION
from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import HierarchicalChecksum

# Loops effectively disabled: every exchange below is driven by hand,
# so the assertions see exactly one conversation at a time.
MANUAL = NodeConfig(
    anti_entropy_interval=60.0,
    rumor_interval=60.0,
    strategy="hierarchical",
    retry=RetryPolicy(connect_timeout=1.0, io_timeout=2.0, attempts=2),
)


def ts(t: float, site: int = 0, seq: int = 0) -> Timestamp:
    return Timestamp(t, site, seq)


async def raw_call(host, port, body: dict) -> dict:
    """Speak the wire by hand — what a from-source peer build sends."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        blob = json.dumps(body).encode()
        writer.write(struct.pack(">I", len(blob)) + blob)
        await writer.drain()
        (length,) = struct.unpack(">I", await reader.readexactly(HEADER_BYTES))
        return json.loads(await reader.readexactly(length))
    finally:
        writer.close()


def seed(node, items) -> None:
    for key, value, stamp in items:
        node.store.apply_entry(key, make_entry(value, stamp))


class TestOldPeerInterop:
    def test_v1_and_v2_peers_pull_from_a_hierarchical_node(self):
        """Strict v1 and v2 frames get plain replies: real updates, the
        stamped version respected, and no v3 fields anywhere."""

        async def scenario():
            cluster = await LiveCluster.launch(2, MANUAL)
            try:
                seed(cluster.nodes[0], [("printer:bldg-35", "up", ts(1.0))])
                info = cluster.membership.get(0)
                replies = []
                for version, body_max in ((1, None), (2, 2)):
                    body = {
                        "v": 1,
                        "type": "pull-request",
                        "sender": 90 + version,
                        "payload": {"mode": "pull"},
                    }
                    if body_max is not None:
                        body["max"] = body_max
                    replies.append(await raw_call(info.host, info.port, body))
            finally:
                await cluster.stop()
            return replies

        v1, v2 = asyncio.run(scenario())
        for reply, version in ((v1, 1), (v2, 2)):
            assert reply["type"] == "pull-reply"
            assert reply["v"] == version
            assert len(reply["payload"]["updates"]) == 1
            assert "buckets" not in reply["payload"]
            assert "bits" not in reply["payload"]
            assert "frontier" not in reply["payload"]

    def test_first_conversation_with_an_unknown_peer_avoids_the_tree(self):
        """Peers are assumed v1 until their advert is learned, so the
        very first exchange a hierarchical node initiates must run the
        classic path — only the second may drill down."""

        async def scenario():
            cluster = await LiveCluster.launch(2, MANUAL)
            n0, n1 = cluster.nodes[0], cluster.nodes[1]
            try:
                seed(n0, [("only-at-0", "x", ts(2.0))])
                assert await n0.run_anti_entropy_once()
                first_rounds = n0.stats.tree_rounds
                first_agrees = n0.store.agrees_with(n1.store)
                learned = n0.wire_version(1)

                seed(n0, [("later-at-0", "y", ts(3.0))])
                assert await n0.run_anti_entropy_once()
                return (
                    first_rounds,
                    first_agrees,
                    learned,
                    n0.stats.tree_rounds,
                    n1.stats.tree_rounds,
                    n0.store.agrees_with(n1.store),
                )
            finally:
                await cluster.stop()

        first_rounds, first_agrees, learned, rounds0, rounds1, agrees = (
            asyncio.run(scenario())
        )
        assert first_rounds == 0          # classic path: no TREE frames
        assert first_agrees               # ... but it still converged
        assert learned == PROTOCOL_VERSION
        assert rounds0 >= 1               # second exchange walked the tree
        assert rounds1 >= 1               # responder counted its side too
        assert agrees


class TestTreeFrames:
    def test_raw_tree_request_expands_the_differing_root(self):
        async def scenario():
            cluster = await LiveCluster.launch(2, MANUAL)
            n0 = cluster.nodes[0]
            try:
                seed(n0, [("k", "v", ts(1.0))])
                info = cluster.membership.get(0)
                tree = n0.store.checksum_tree
                wrong_root = tree.root ^ 1
                reply = await raw_call(
                    info.host,
                    info.port,
                    {
                        "v": 3,
                        "max": 3,
                        "type": "tree",
                        "sender": 77,
                        "payload": {
                            "mode": "push-pull",
                            "bits": n0.store.bucket_bits,
                            "nodes": [[1, wrong_root]],
                        },
                    },
                )
                left, right = tree.children(1)
                expected = [[left, tree.node(left)], [right, tree.node(right)]]
            finally:
                await cluster.stop()
            return reply, expected

        reply, expected = asyncio.run(scenario())
        assert reply["type"] == "tree"
        assert reply["payload"]["frontier"] == expected
        assert reply["payload"]["dirty"] == []

    def test_bucket_count_mismatch_is_refused_not_guessed(self):
        async def scenario():
            cluster = await LiveCluster.launch(2, MANUAL)
            try:
                info = cluster.membership.get(0)
                bits = cluster.nodes[0].store.bucket_bits
                reply = await raw_call(
                    info.host,
                    info.port,
                    {
                        "v": 3,
                        "max": 3,
                        "type": "tree",
                        "sender": 77,
                        "payload": {
                            "mode": "push-pull",
                            "bits": bits + 1,
                            "nodes": [[1, 0]],
                        },
                    },
                )
            finally:
                await cluster.stop()
            return reply, bits

        reply, bits = asyncio.run(scenario())
        assert reply["payload"]["mismatch"] is True
        assert reply["payload"]["bits"] == bits


def _divergent_states():
    """Shared history plus one-sided edits, as (key, value, stamp) rows."""
    shared = [(f"key-{i}", f"shared-{i}", ts(float(i), site=2)) for i in range(120)]
    only_a = [("key-3", "rewritten", ts(500.0, site=0)), ("fresh-a", "a", ts(501.0, site=0))]
    only_b = [("fresh-b", "b", ts(502.0, site=1))]
    return shared, only_a, only_b


class TestSimLiveEquivalence:
    def test_live_tree_merge_equals_sim_exchange(self):
        """Acceptance criterion: the same divergent pair of databases,
        merged once by the simulator's strategy object and once by two
        live nodes over TREE frames, ends in the identical state."""
        shared, only_a, only_b = _divergent_states()

        sim_a = ReplicaStore(site_id=0, clock=SequenceClock(site=0))
        sim_b = ReplicaStore(site_id=1, clock=SequenceClock(site=1))
        for store in (sim_a, sim_b):
            for key, value, stamp in shared:
                store.apply_entry(key, make_entry(value, stamp))
        for key, value, stamp in only_a:
            sim_a.apply_entry(key, make_entry(value, stamp))
        for key, value, stamp in only_b:
            sim_b.apply_entry(key, make_entry(value, stamp))
        report = HierarchicalChecksum().exchange(sim_a, sim_b, ExchangeMode.PUSH_PULL)
        assert sim_a.agrees_with(sim_b)
        assert report.buckets_resolved >= 1

        async def scenario():
            cluster = await LiveCluster.launch(2, MANUAL)
            n0, n1 = cluster.nodes[0], cluster.nodes[1]
            try:
                # An empty first exchange teaches each side the other's
                # protocol ceiling without moving any data.
                assert await n0.run_anti_entropy_once()
                seed(n0, shared)
                seed(n1, shared)
                seed(n0, only_a)
                seed(n1, only_b)
                before = n0.stats.tree_rounds
                assert await n0.run_anti_entropy_once()
                return (
                    n0.store.snapshot(),
                    n1.store.snapshot(),
                    n0.stats.tree_rounds - before,
                    n0.stats.entries_avoided,
                    n0.store.agrees_with(n1.store),
                )
            finally:
                await cluster.stop()

        live_a, live_b, rounds, avoided, agrees = asyncio.run(scenario())
        assert rounds >= 1
        assert agrees
        # Bucket scoping really engaged: most of the 120-row shared
        # history never crossed the wire.
        assert avoided > 0
        # Live and sim runtimes converged to the same database.
        assert live_a == live_b == sim_a.snapshot() == sim_b.snapshot()
