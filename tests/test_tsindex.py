"""The inverted timestamp index backing recent-update lists and peel back."""

from hypothesis import given, strategies as st

from repro.core.timestamps import Timestamp
from repro.core.tsindex import TimestampIndex


def ts(t: float, site: int = 0, seq: int = 0) -> Timestamp:
    return Timestamp(t, site, seq)


class TestBasics:
    def test_empty(self):
        index = TimestampIndex()
        assert len(index) == 0
        assert list(index.newest_first()) == []
        assert index.oldest() is None

    def test_set_and_lookup(self):
        index = TimestampIndex()
        index.set("a", ts(1))
        assert "a" in index
        assert index.timestamp_of("a") == ts(1)

    def test_newest_first_order(self):
        index = TimestampIndex()
        index.set("a", ts(1))
        index.set("b", ts(3))
        index.set("c", ts(2))
        assert [k for k, __ in index.newest_first()] == ["b", "c", "a"]

    def test_overwrite_moves_key(self):
        index = TimestampIndex()
        index.set("a", ts(1))
        index.set("b", ts(2))
        index.set("a", ts(3))
        assert [k for k, __ in index.newest_first()] == ["a", "b"]
        assert len(index) == 2

    def test_discard(self):
        index = TimestampIndex()
        index.set("a", ts(1))
        index.discard("a")
        assert "a" not in index
        assert list(index.newest_first()) == []

    def test_discard_missing_is_noop(self):
        index = TimestampIndex()
        index.discard("ghost")
        assert len(index) == 0

    def test_oldest(self):
        index = TimestampIndex()
        index.set("a", ts(5))
        index.set("b", ts(2))
        assert index.oldest() == ("b", ts(2))

    def test_newer_than_cutoff(self):
        index = TimestampIndex()
        for i in range(10):
            index.set(i, ts(float(i)))
        newer = list(index.newer_than(ts(6.0)))
        assert [k for k, __ in newer] == [9, 8, 7]

    def test_mixed_key_types_with_equal_timestamps(self):
        # int and str keys at the same timestamp must not raise on
        # comparison inside the sorted structure.
        index = TimestampIndex()
        index.set(1, ts(1.0))
        index.set("one", ts(1.0))
        index.set((2, "t"), ts(1.0))
        assert len(list(index.newest_first())) == 3


class TestCompaction:
    def test_heavy_churn_stays_correct(self):
        index = TimestampIndex()
        for round_number in range(30):
            for key in range(20):
                index.set(key, ts(float(round_number * 20 + key)))
        assert len(index) == 20
        keys = [k for k, __ in index.newest_first()]
        assert keys == list(range(19, -1, -1))

    def test_discard_churn(self):
        index = TimestampIndex()
        for i in range(200):
            index.set(i % 10, ts(float(i)))
            if i % 3 == 0:
                index.discard(i % 10)
        survivors = [k for k, __ in index.newest_first()]
        assert len(survivors) == len(set(survivors))


class TestIndexProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["set", "discard"]),
                st.integers(0, 8),
                st.floats(0, 100, allow_nan=False),
            ),
            max_size=80,
        )
    )
    def test_model_conformance(self, operations):
        """The index behaves like a dict plus sorting."""
        index = TimestampIndex()
        model: dict = {}
        seq = 0
        for op, key, time in operations:
            if op == "set":
                stamp = ts(time, seq=seq)
                seq += 1
                index.set(key, stamp)
                model[key] = stamp
            else:
                index.discard(key)
                model.pop(key, None)
        assert len(index) == len(model)
        expected = sorted(model.items(), key=lambda kv: kv[1], reverse=True)
        assert list(index.newest_first()) == expected
