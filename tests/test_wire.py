"""Wire framing: length-prefixed JSON frames with a versioned header."""

import asyncio
import json
import struct

import pytest

from repro.core.items import DeathCertificate, VersionedValue
from repro.core.store import StoreUpdate
from repro.core.serialize import encode_updates
from repro.net.wire import (
    HEADER_BYTES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Message,
    MessageType,
    WireError,
    decode_body,
    encode_message,
    payload_bucket_list,
    payload_tree_nodes,
    payload_updates,
    read_message,
)

from conftest import ts


def reader_of(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


def read_all(data: bytes):
    async def drain():
        reader = reader_of(data)
        messages = []
        while True:
            message = await read_message(reader)
            if message is None:
                return messages
            messages.append(message)

    return asyncio.run(drain())


class TestFraming:
    def test_round_trip(self):
        message = Message(MessageType.PUSH, sender=3, payload={"x": [1, 2]})
        assert read_all(encode_message(message)) == [message]

    def test_multiple_frames_on_one_stream(self):
        a = Message(MessageType.RUMOR, 0, {"i": 1})
        b = Message(MessageType.ACK, 1, {"news": [True]})
        assert read_all(encode_message(a) + encode_message(b)) == [a, b]

    def test_clean_eof_returns_none(self):
        assert read_all(b"") == []

    def test_eof_mid_header(self):
        with pytest.raises(WireError, match="mid-header"):
            read_all(encode_message(Message(MessageType.ACK, 0))[: HEADER_BYTES - 1])

    def test_eof_mid_frame(self):
        frame = encode_message(Message(MessageType.ACK, 0, {"pad": "x" * 100}))
        with pytest.raises(WireError, match="mid-frame"):
            read_all(frame[:-5])

    def test_oversized_frame_rejected_before_read(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(WireError, match="exceeds"):
            read_all(header)

    def test_zero_length_frame_rejected(self):
        with pytest.raises(WireError, match="zero-length"):
            read_all(struct.pack(">I", 0))

    def test_oversized_message_rejected_on_encode(self):
        message = Message(MessageType.PUSH, 0, {"blob": "x" * 100})
        with pytest.raises(WireError, match="exceeds"):
            encode_message(message, max_frame=32)

    def test_chunked_delivery(self):
        """Frames reassemble no matter how the bytes are split."""
        message = Message(MessageType.CHECKSUM, 2, {"checksum": 12345})
        data = encode_message(message)

        async def drip():
            reader = asyncio.StreamReader()

            async def feed():
                for i in range(len(data)):
                    reader.feed_data(data[i : i + 1])
                    await asyncio.sleep(0)
                reader.feed_eof()

            feeder = asyncio.ensure_future(feed())
            result = await read_message(reader)
            await feeder
            return result

        assert asyncio.run(drip()) == message


class TestBodyValidation:
    def body(self, **overrides):
        blob = {"v": PROTOCOL_VERSION, "type": "ack", "sender": 0, "payload": {}}
        blob.update(overrides)
        return json.dumps(blob).encode()

    def test_bad_json(self):
        with pytest.raises(WireError, match="JSON"):
            decode_body(b"{nope")

    def test_non_object_body(self):
        with pytest.raises(WireError, match="object"):
            decode_body(b"[1,2,3]")

    def test_version_mismatch(self):
        with pytest.raises(WireError, match="version"):
            decode_body(self.body(v=99))

    def test_missing_version(self):
        with pytest.raises(WireError, match="version"):
            decode_body(json.dumps({"type": "ack", "sender": 0}).encode())

    def test_unknown_type(self):
        with pytest.raises(WireError, match="unknown message type"):
            decode_body(self.body(type="gossip-harder"))

    def test_bad_sender(self):
        with pytest.raises(WireError, match="sender"):
            decode_body(self.body(sender="three"))
        with pytest.raises(WireError, match="sender"):
            decode_body(self.body(sender=True))

    def test_bad_payload(self):
        with pytest.raises(WireError, match="payload"):
            decode_body(self.body(payload=[1]))

    def test_every_message_type_round_trips(self):
        for message_type in MessageType:
            message = Message(message_type, sender=1, payload={"t": message_type.value})
            assert decode_body(encode_message(message)[HEADER_BYTES:]) == message


class TestPayloadUpdates:
    def test_round_trip_with_certificates(self):
        updates = [
            StoreUpdate("a", VersionedValue("v", ts(1.0))),
            StoreUpdate(
                "b",
                DeathCertificate(ts(2.0), ts(2.0), retention_sites=(1, 4)).reactivated(9.0),
            ),
        ]
        payload = {"updates": encode_updates(updates)}
        # Through real JSON, as the wire would carry it.
        assert payload_updates(json.loads(json.dumps(payload))) == updates

    def test_missing_field_defaults_empty(self):
        assert payload_updates({}) == []

    def test_garbage_becomes_wire_error(self):
        with pytest.raises(WireError, match="updates"):
            payload_updates({"updates": [{"key": "k", "entry": {"kind": "mystery"}}]})
        with pytest.raises(WireError, match="updates"):
            payload_updates({"updates": "not-a-list"})


class TestPayloadTreeNodes:
    def test_round_trips_arbitrary_precision_checksums(self):
        nodes = [[1, 2 ** 127 + 5], [63, 0]]
        payload = json.loads(json.dumps({"nodes": nodes}))
        assert payload_tree_nodes(payload) == [(1, 2 ** 127 + 5), (63, 0)]

    def test_missing_field_defaults_empty(self):
        assert payload_tree_nodes({}) == []
        assert payload_tree_nodes({"frontier": [[2, 7]]}, "frontier") == [(2, 7)]

    @pytest.mark.parametrize(
        "nodes",
        [
            "zip",                  # not a list at all
            [[1]],                  # wrong arity
            [[0, 5]],               # node ids start at 1
            [[1, -1]],              # negative checksum
            [["1", 5]],             # stringly-typed id
            [[True, 5]],            # bool is not a node id
            [[1, True]],            # ... nor a checksum
            [{"node": 1}],          # wrong shape
        ],
    )
    def test_garbage_becomes_wire_error(self, nodes):
        with pytest.raises(WireError, match="nodes"):
            payload_tree_nodes({"nodes": nodes})


class TestPayloadBucketList:
    def test_round_trips(self):
        payload = json.loads(json.dumps({"dirty": [0, 5, 63]}))
        assert payload_bucket_list(payload) == [0, 5, 63]
        assert payload_bucket_list({}) == []
        assert payload_bucket_list({"buckets": [3]}, "buckets") == [3]

    @pytest.mark.parametrize("buckets", ["zip", [-1], [1.5], [True], [[0]]])
    def test_garbage_becomes_wire_error(self, buckets):
        with pytest.raises(WireError, match="dirty"):
            payload_bucket_list({"dirty": buckets})
