"""Generators: Poisson arrivals, Zipf popularity, open/closed loops."""

import random
import statistics

import pytest

from repro.workload.generators import (
    ClientPool,
    ClosedLoopGenerator,
    OpenLoopGenerator,
    OpKind,
    WorkloadConfig,
    ZipfKeys,
    poisson,
)


class TestPoisson:
    def test_mean_matches(self):
        rng = random.Random(11)
        draws = [poisson(rng, 3.0) for __ in range(4000)]
        assert statistics.mean(draws) == pytest.approx(3.0, rel=0.05)

    def test_variance_matches_mean(self):
        """The regression the old binomial injector would fail: a true
        Poisson has variance == mean, while floor(rate) + Bernoulli has
        variance frac*(1-frac) <= 0.25 whatever the rate."""
        rng = random.Random(12)
        mean = 4.0
        draws = [poisson(rng, mean) for __ in range(6000)]
        assert statistics.variance(draws) == pytest.approx(mean, rel=0.15)

    def test_zero_rate_draws_nothing(self):
        rng = random.Random(1)
        assert all(poisson(rng, 0.0) == 0 for __ in range(10))

    def test_large_mean_uses_normal_approximation(self):
        # Rates modeling millions of users must stay O(1) per draw and
        # keep the right first two moments.
        rng = random.Random(13)
        mean = 2_000_000 * 0.001  # 2000 ops/cycle from 2M users
        draws = [poisson(rng, mean) for __ in range(800)]
        assert statistics.mean(draws) == pytest.approx(mean, rel=0.01)
        assert statistics.variance(draws) == pytest.approx(mean, rel=0.2)
        assert min(draws) >= 0

    def test_deterministic_under_seed(self):
        a = [poisson(random.Random(7), 5.0) for __ in range(5)]
        b = [poisson(random.Random(7), 5.0) for __ in range(5)]
        assert a == b

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson(random.Random(0), -1.0)


class TestZipfKeys:
    def test_zipf_zero_is_uniform(self):
        keys = ZipfKeys(key_space=4, zipf_s=0.0)
        # Uniform CDF: equal steps of 1/4.
        assert keys.cdf == pytest.approx([0.25, 0.5, 0.75, 1.0])
        rng = random.Random(5)
        counts = {}
        for __ in range(4000):
            key = keys.pick(rng)
            counts[key] = counts.get(key, 0) + 1
        for key in ("key-0", "key-1", "key-2", "key-3"):
            assert counts[key] == pytest.approx(1000, rel=0.15)

    def test_single_key_space(self):
        keys = ZipfKeys(key_space=1, zipf_s=1.5)
        assert keys.cdf == pytest.approx([1.0])
        rng = random.Random(6)
        assert all(keys.pick(rng) == "key-0" for __ in range(20))

    def test_skew_concentrates_on_low_ranks(self):
        keys = ZipfKeys(key_space=100, zipf_s=1.2)
        rng = random.Random(7)
        hot = sum(1 for __ in range(2000) if keys.pick(rng) == "key-0")
        assert hot / 2000 > 0.15  # rank 1 dominates under s=1.2

    def test_cdf_ends_at_one(self):
        for s in (0.0, 0.5, 1.0, 2.0):
            assert ZipfKeys(17, s).cdf[-1] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfKeys(0)
        with pytest.raises(ValueError):
            ZipfKeys(5, -0.1)


class TestWorkloadConfig:
    def test_users_scale_the_rate(self):
        config = WorkloadConfig(users=2_000_000, ops_per_user_per_cycle=0.001)
        assert config.rate == pytest.approx(2000.0)

    def test_rate_defaults_to_updates_per_cycle(self):
        assert WorkloadConfig(updates_per_cycle=3.5).rate == 3.5

    def test_mix_must_leave_writes(self):
        with pytest.raises(ValueError):
            WorkloadConfig(delete_fraction=0.5, read_fraction=0.5)

    def test_legacy_validations_still_hold(self):
        with pytest.raises(ValueError):
            WorkloadConfig(updates_per_cycle=-1)
        with pytest.raises(ValueError):
            WorkloadConfig(key_space=0)
        with pytest.raises(ValueError):
            WorkloadConfig(zipf_s=-0.5)
        with pytest.raises(ValueError):
            WorkloadConfig(delete_fraction=1.0)


class TestOpenLoop:
    def test_rate_is_respected(self):
        config = WorkloadConfig(updates_per_cycle=5.0, read_fraction=0.2)
        generator = OpenLoopGenerator(config, random.Random(8))
        total = sum(
            len(generator.ops_for_cycle(cycle, [0, 1, 2])) for cycle in range(400)
        )
        assert total == pytest.approx(2000, rel=0.1)

    def test_kind_mix(self):
        config = WorkloadConfig(
            updates_per_cycle=10.0, delete_fraction=0.2, read_fraction=0.3
        )
        generator = OpenLoopGenerator(config, random.Random(9))
        ops = [
            op
            for cycle in range(300)
            for op in generator.ops_for_cycle(cycle, [0])
        ]
        fractions = {
            kind: sum(1 for op in ops if op.kind is kind) / len(ops)
            for kind in OpKind
        }
        assert fractions[OpKind.DELETE] == pytest.approx(0.2, abs=0.05)
        assert fractions[OpKind.READ] == pytest.approx(0.3, abs=0.05)
        assert fractions[OpKind.WRITE] == pytest.approx(0.5, abs=0.05)

    def test_no_sites_no_ops(self):
        generator = OpenLoopGenerator(WorkloadConfig(), random.Random(0))
        assert generator.ops_for_cycle(0, []) == []


class TestClosedLoop:
    def test_throughput_follows_the_closed_loop_law(self):
        pool = ClientPool(
            clients=20, think_time=4.0, max_outstanding=1, service_time=1.0
        )
        generator = ClosedLoopGenerator(
            WorkloadConfig(), pool, random.Random(10)
        )
        cycles = 500
        total = sum(
            len(generator.ops_for_cycle(cycle, [0, 1])) for cycle in range(cycles)
        )
        # 20 clients / (1 + 4) cycles per op = 4 ops/cycle.
        assert pool.expected_rate == pytest.approx(4.0)
        assert total / cycles == pytest.approx(4.0, rel=0.15)

    def test_max_outstanding_scales_offered_load(self):
        pool = ClientPool(
            clients=10, think_time=4.0, max_outstanding=2, service_time=1.0
        )
        assert pool.expected_rate == pytest.approx(4.0)

    def test_a_slot_never_fires_twice_in_one_cycle(self):
        pool = ClientPool(
            clients=3, think_time=0.0, max_outstanding=1, service_time=1.0
        )
        generator = ClosedLoopGenerator(
            WorkloadConfig(), pool, random.Random(11)
        )
        for cycle in range(50):
            assert len(generator.ops_for_cycle(cycle, [0])) <= 3

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            ClientPool(clients=0)
        with pytest.raises(ValueError):
            ClientPool(think_time=-1.0)
        with pytest.raises(ValueError):
            ClientPool(max_outstanding=0)
        with pytest.raises(ValueError):
            ClientPool(service_time=0.0)
