"""The WAN model: topology shape, latency, capacity, attribution."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.metrics import LinkTraffic, canonical_edge
from repro.sim.mailer import MailSystem
from repro.sim.rng import RngRegistry
from repro.sim.transport import LinkCapacityLedger
from repro.workload.geo import (
    DatacenterSpec,
    WanConfig,
    WanLinkSpec,
    WanNetwork,
    link_name,
    three_datacenters,
)


def _two_dc(capacity=None, latency=2.0, intra=0.2):
    return WanConfig(
        datacenters=(DatacenterSpec("east", 2), DatacenterSpec("west", 3)),
        links=(WanLinkSpec("east", "west", latency=latency, capacity=capacity),),
        intra_dc_latency=intra,
    )


class TestSpecs:
    def test_link_name_is_order_independent(self):
        assert link_name("b", "a") == link_name("a", "b") == "wan:a<->b"

    def test_link_rejects_self_loop(self):
        with pytest.raises(ValueError):
            WanLinkSpec("east", "east")

    def test_config_rejects_unknown_datacenter(self):
        with pytest.raises(ValueError):
            WanConfig(
                datacenters=(DatacenterSpec("a", 1), DatacenterSpec("b", 1)),
                links=(WanLinkSpec("a", "nowhere"),),
            )

    def test_config_rejects_duplicate_links(self):
        with pytest.raises(ValueError):
            WanConfig(
                datacenters=(DatacenterSpec("a", 1), DatacenterSpec("b", 1)),
                links=(WanLinkSpec("a", "b"), WanLinkSpec("b", "a")),
            )

    def test_config_rejects_single_datacenter(self):
        with pytest.raises(ValueError):
            WanConfig(datacenters=(DatacenterSpec("a", 1),), links=())

    def test_three_datacenters_stock_shape(self):
        config = three_datacenters((4, 5, 6), capacity=32.0)
        assert config.site_count == 15
        assert [dc.name for dc in config.datacenters] == [
            "us-east", "eu-west", "ap-south",
        ]
        assert all(link.capacity == 32.0 for link in config.links)


class TestTopology:
    def test_sites_numbered_in_datacenter_order(self):
        net = WanNetwork(_two_dc())
        assert net.site_count == 5
        assert net.site_ids == [0, 1, 2, 3, 4]
        assert net.sites_of("east") == [0, 1]
        assert net.sites_of("west") == [2, 3, 4]
        assert net.dc_of(0) == "east"
        assert net.dc_of(4) == "west"

    def test_gateways_are_not_sites(self):
        net = WanNetwork(_two_dc())
        east, west = net.gateway_of("east"), net.gateway_of("west")
        assert {east, west} == {5, 6}
        assert set(net.topology.sites) == {0, 1, 2, 3, 4}

    def test_wan_edges_are_labeled(self):
        net = WanNetwork(_two_dc())
        assert set(net.wan_edges) == {"wan:east<->west"}
        edge = net.wan_edges["wan:east<->west"]
        assert edge == canonical_edge(
            net.gateway_of("east"), net.gateway_of("west")
        )


class TestLatency:
    def test_self_delivery_is_free(self):
        assert WanNetwork(_two_dc()).latency(0, 0) == 0.0

    def test_intra_dc_pays_the_intra_latency(self):
        net = WanNetwork(_two_dc(intra=0.2))
        # site -> gateway -> site: two half-intra hops.
        assert net.latency(0, 1) == pytest.approx(0.2)

    def test_cross_dc_accumulates_along_the_route(self):
        net = WanNetwork(_two_dc(latency=2.0, intra=0.2))
        # half-intra + WAN + half-intra.
        assert net.latency(0, 2) == pytest.approx(0.1 + 2.0 + 0.1)

    def test_uncapped_delay_equals_latency(self):
        net = WanNetwork(_two_dc(latency=2.0, intra=0.2))
        assert net.delay(0, 2, now=0.0) == pytest.approx(net.latency(0, 2))

    def test_capped_link_builds_a_transmission_queue(self):
        net = WanNetwork(_two_dc(capacity=2.0, latency=1.0, intra=0.0))
        # Each message holds the link for 1/2 time unit; back-to-back
        # posts at t=0 queue behind each other.
        first = net.delay(0, 2, now=0.0)
        second = net.delay(0, 2, now=0.0)
        third = net.delay(0, 2, now=0.0)
        assert first == pytest.approx(1.0 + 0.5)
        assert second == pytest.approx(1.0 + 1.0)
        assert third == pytest.approx(1.0 + 1.5)

    def test_queue_drains_with_time(self):
        net = WanNetwork(_two_dc(capacity=2.0, latency=1.0, intra=0.0))
        net.delay(0, 2, now=0.0)
        # Posted long after the queue drained: no waiting.
        assert net.delay(0, 2, now=100.0) == pytest.approx(1.5)

    def test_mailer_integration_prices_wan_trips(self):
        net = WanNetwork(_two_dc(latency=2.0, intra=0.2))
        simulator = Simulator()
        mail = MailSystem(simulator, RngRegistry(0), latency=net)
        delivered = []
        mail.on_delivery(lambda letter: delivered.append(simulator.now))
        mail.post(0, 2, "cross-dc")
        mail.post(0, 1, "intra-dc")
        simulator.run_until_quiescent()
        assert sorted(delivered) == pytest.approx([0.2, 2.2])


class TestCapacityLedger:
    def test_uncapped_edges_are_free(self):
        ledger = LinkCapacityLedger({})
        assert ledger.would_admit([(0, 1)], cost=1e9)
        ledger.charge([(0, 1)], cost=1e9)
        assert ledger.used((0, 1)) == 0.0

    def test_budget_enforced_and_refusals_counted(self):
        edge = (0, 1)
        ledger = LinkCapacityLedger({edge: 2.0})
        assert ledger.would_admit([edge])
        ledger.charge([edge])
        ledger.charge([edge])
        assert not ledger.would_admit([edge])
        assert ledger.refusals == 1
        ledger.reset()
        assert ledger.would_admit([edge])

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LinkCapacityLedger({(0, 1): 0.0})


class TestConversationAdmission:
    def test_intra_dc_always_allowed(self):
        net = WanNetwork(_two_dc(capacity=1.0))
        for __ in range(10):
            assert net.conversation_allowed(0, 1)
            net.note_conversation(0, 1)

    def test_saturated_wan_link_refuses_cross_dc(self):
        net = WanNetwork(_two_dc(capacity=2.0))
        net.reset_cycle()
        assert net.conversation_allowed(0, 2)
        net.note_conversation(0, 2)
        net.note_conversation(1, 3)
        assert not net.conversation_allowed(0, 4)
        net.reset_cycle()
        assert net.conversation_allowed(0, 4)

    def test_note_updates_charges_the_route(self):
        net = WanNetwork(_two_dc(capacity=10.0))
        net.reset_cycle()
        net.note_updates(0, 2, 9.0)
        assert net.conversation_allowed(0, 2)
        net.note_updates(0, 2, 1.0)
        assert not net.conversation_allowed(0, 2)


class TestLinkReport:
    def test_rows_cover_wan_links_and_intra_rollups(self):
        net = WanNetwork(_two_dc())
        traffic = LinkTraffic()
        gateway_east = net.gateway_of("east")
        gateway_west = net.gateway_of("west")
        # One cross-DC conversation crossing every edge on the route.
        for a, b in ((0, gateway_east), (gateway_east, gateway_west),
                     (gateway_west, 2)):
            traffic.compare.add_edge(a, b)
            traffic.update.add_edge(a, b, 3.0)
            traffic.useful_update.add_edge(a, b, 2.0)
        rows = {row["link"]: row for row in net.link_report(traffic)}
        assert set(rows) == {"wan:east<->west", "intra:east", "intra:west"}
        wan = rows["wan:east<->west"]
        assert wan["conversations"] == 1
        assert wan["updates"] == 3.0
        assert wan["useful_updates"] == 2.0
        assert rows["intra:east"]["conversations"] == 1
        assert rows["intra:west"]["updates"] == 3.0
