"""The live load generator: wire reads/deletes, curves, schema parity."""

import asyncio

from repro.net.node import NodeConfig
from repro.net.peer import RetryPolicy
from repro.net.runner import LiveCluster
from repro.workload.generators import WorkloadConfig
from repro.workload.geo import three_datacenters
from repro.workload.live import (
    DEFAULT_DATACENTERS,
    LiveTrafficTap,
    LiveWorkloadConfig,
    assign_datacenters,
    run_live_workload,
)
from repro.workload.steady import SCHEMA, SteadyStateConfig, run_steady_state

FAST = NodeConfig(
    anti_entropy_interval=0.05,
    rumor_interval=0.02,
    retry=RetryPolicy(connect_timeout=1.0, io_timeout=2.0, attempts=2),
)

BOUND_SECONDS = 15.0


def _key_paths(value, prefix=""):
    """Every nested dict-key path in a report (list contents ignored)."""
    if not isinstance(value, dict):
        return set()
    paths = set()
    for key, child in value.items():
        path = f"{prefix}.{key}" if prefix else key
        paths.add(path)
        paths |= _key_paths(child, path)
    return paths


class TestAssignment:
    def test_contiguous_blocks(self):
        assignment = assign_datacenters(
            [0, 1, 2, 3, 4, 5], ("east", "west", "south")
        )
        assert assignment == {
            0: "east", 1: "east", 2: "west", 3: "west", 4: "south", 5: "south",
        }

    def test_fewer_nodes_than_datacenters(self):
        assignment = assign_datacenters([0, 1], DEFAULT_DATACENTERS)
        assert len(set(assignment.values())) == 2

    def test_three_nodes_span_three_datacenters(self):
        assignment = assign_datacenters([0, 1, 2], DEFAULT_DATACENTERS)
        assert sorted(assignment.values()) == sorted(DEFAULT_DATACENTERS)


class TestTrafficTap:
    def test_client_events_are_ignored(self):
        tap = LiveTrafficTap({0: "east", 1: "west"})

        class FakeEvent:
            def __init__(self, kind, node, payload):
                from repro.obs.events import EventKind
                self.kind = EventKind(kind)
                self.node = node
                self.payload = payload

        tap(FakeEvent("exchange-settled", 0,
                      {"partner": -1, "shipped": 3, "received": 1}))
        assert tap.conversations == {}
        tap(FakeEvent("exchange-settled", 0,
                      {"partner": 1, "shipped": 3, "received": 1}))
        assert tap.conversations == {"wan:east<->west": 1.0}
        assert tap.updates == {"wan:east<->west": 4.0}
        assert tap.useful == {"wan:east<->west": 4.0}
        tap(FakeEvent("rumor-sent", 0, {"partner": 1, "shipped": 2}))
        assert tap.conversations["wan:east<->west"] == 2.0
        assert tap.updates["wan:east<->west"] == 6.0
        assert tap.useful["wan:east<->west"] == 4.0  # rumors may be redundant

    def test_summary_shape_matches_sim(self):
        tap = LiveTrafficTap({0: "a", 1: "b"})
        summary = tap.summary(("a", "b"))
        assert set(summary) == {
            "links", "wan_conversations", "wan_share", "busiest_wan_link",
        }
        assert {row["link"] for row in summary["links"]} == {
            "wan:a<->b", "intra:a", "intra:b",
        }


class TestWireOperations:
    def test_read_and_delete_over_the_wire(self):
        async def scenario():
            cluster = await LiveCluster.launch(3, FAST)
            try:
                write = await cluster.inject(0, "user:alice", "here")
                read = await cluster.read(0, "user:alice")
                missing = await cluster.read(1, "user:nobody")
                await cluster.wait_converged("user:alice", timeout=BOUND_SECONDS)
                delete = await cluster.delete_key(1, "user:alice")
                converged = await cluster.wait_converged(timeout=BOUND_SECONDS)
                tombstone = await cluster.read(2, "user:alice")
            finally:
                await cluster.stop()
            return write, read, missing, delete, converged, tombstone

        write, read, missing, delete, converged, tombstone = asyncio.run(
            scenario()
        )
        assert write.payload["applied"] and write.payload["timestamp"]
        assert read["found"] and not read["deleted"]
        assert read["value"] == "here"
        assert read["timestamp"] == write.payload["timestamp"]
        assert not missing["found"]
        assert delete.payload["applied"]
        assert converged, "cluster failed to settle the deletion"
        # The death certificate propagated: node 2 sees a tombstone.
        assert tombstone["found"] and tombstone["deleted"]
        assert tombstone["value"] is None


class TestLiveRun:
    def test_three_node_run_produces_a_converged_report(self):
        config = LiveWorkloadConfig(
            workload=WorkloadConfig(
                updates_per_cycle=30.0,
                key_space=8,
                read_fraction=0.3,
                delete_fraction=0.1,
            ),
            nodes=3,
            duration=1.5,
            tick=0.05,
            window=0.5,
            seed=5,
            node_config=FAST,
            quiesce_timeout=BOUND_SECONDS,
        )
        report = asyncio.run(run_live_workload(config))
        assert report["schema"] == SCHEMA
        assert report["runtime"] == "live"
        assert report["unit"] == "seconds"
        assert report["n"] == 3
        assert report["converged_after_quiesce"], "live quiesce did not settle"
        ops = report["ops"]
        assert ops["total"] == ops["writes"] + ops["reads"] + ops["deletes"]
        assert ops["writes"] > 0
        assert report["throughput"]["unit"] == "ops/second"
        assert report["throughput"]["mean"] > 0
        assert report["staleness"]["count"] >= 0
        assert len(report["curves"]["points"]) >= 1
        # Gossip between the three single-node datacenters is WAN traffic.
        assert report["traffic"]["wan_conversations"] > 0

    def test_sim_and_live_reports_share_one_schema(self):
        live_config = LiveWorkloadConfig(
            workload=WorkloadConfig(
                updates_per_cycle=20.0, key_space=8, read_fraction=0.3
            ),
            nodes=3,
            duration=1.0,
            tick=0.05,
            window=0.5,
            seed=6,
            node_config=FAST,
            quiesce_timeout=BOUND_SECONDS,
        )
        live = asyncio.run(run_live_workload(live_config))
        sim = run_steady_state(
            SteadyStateConfig(
                workload=WorkloadConfig(
                    updates_per_cycle=6.0, key_space=8, read_fraction=0.3
                ),
                wan=three_datacenters((1, 1, 1)),
                cycles=10,
                window=5,
                seed=6,
            )
        )
        assert _key_paths(sim) == _key_paths(live)
        # Curve points and traffic rows carry the same columns too.
        assert set(sim["curves"]["points"][0]) == set(
            live["curves"]["points"][0]
        )
        assert set(sim["traffic"]["links"][0]) == set(
            live["traffic"]["links"][0]
        )
