"""Steady-state sim runs: report schema, curves, deletes, WAN traffic."""

import pytest

from repro.cluster.cluster import Cluster
from repro.obs.events import EventBus, EventKind
from repro.obs.metrics import MetricsRegistry
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode
from repro.protocols.exchange import FullCompare
from repro.workload.driver import WorkloadDriver
from repro.workload.generators import ClientPool, WorkloadConfig
from repro.workload.geo import three_datacenters
from repro.workload.steady import (
    SCHEMA,
    SteadyStateConfig,
    build_report,
    empty_traffic_summary,
    run_steady_state,
    summary_lines,
)

REPORT_KEYS = {
    "schema", "runtime", "unit", "n", "duration", "ops", "throughput",
    "staleness", "traffic", "curves", "converged_after_quiesce",
}


def _config(**overrides):
    defaults = dict(
        workload=WorkloadConfig(
            updates_per_cycle=6.0,
            key_space=20,
            read_fraction=0.3,
            delete_fraction=0.05,
        ),
        n=12,
        cycles=20,
        window=5,
        seed=3,
    )
    defaults.update(overrides)
    return SteadyStateConfig(**defaults)


class TestConfigValidation:
    def test_window_must_fit_in_cycles(self):
        with pytest.raises(ValueError):
            SteadyStateConfig(cycles=10, window=11)

    def test_needs_two_sites_without_wan(self):
        with pytest.raises(ValueError):
            SteadyStateConfig(n=1)

    def test_strategy_names_checked(self):
        with pytest.raises(ValueError):
            SteadyStateConfig(strategy="bloom")


class TestReport:
    def test_schema_and_top_level_keys(self):
        report = run_steady_state(_config())
        assert report["schema"] == SCHEMA
        assert set(report) == REPORT_KEYS
        assert report["runtime"] == "sim"
        assert report["unit"] == "cycles"
        assert report["n"] == 12

    def test_throughput_tracks_the_offered_rate(self):
        report = run_steady_state(_config())
        assert report["throughput"]["mean"] == pytest.approx(
            report["ops"]["total"] / 20.0
        )
        assert report["throughput"]["mean"] == pytest.approx(6.0, rel=0.3)
        assert report["throughput"]["unit"] == "ops/cycle"

    def test_op_counts_are_consistent(self):
        report = run_steady_state(_config())
        ops = report["ops"]
        assert ops["total"] == ops["writes"] + ops["reads"] + ops["deletes"]
        assert ops["deletes"] > 0
        assert ops["reads"] > 0

    def test_curves_have_one_point_per_window(self):
        report = run_steady_state(_config(cycles=20, window=5))
        curves = report["curves"]
        assert curves["window"] == 5.0
        assert len(curves["points"]) == 4
        for point in curves["points"]:
            assert set(point) == {
                "t", "ops", "throughput", "staleness_p50",
                "staleness_p99", "residue",
            }
            assert 0.0 <= point["residue"] <= 1.0
        assert [point["t"] for point in curves["points"]] == [5, 10, 15, 20]

    def test_quiesce_converges_the_cluster(self):
        report = run_steady_state(_config())
        assert report["converged_after_quiesce"] is True

    def test_uniform_topology_reports_empty_traffic(self):
        report = run_steady_state(_config())
        assert report["traffic"] == empty_traffic_summary()

    def test_deterministic_under_seed(self):
        assert run_steady_state(_config()) == run_steady_state(_config())

    def test_closed_loop_pool_caps_throughput(self):
        pool = ClientPool(
            clients=10, think_time=4.0, max_outstanding=1, service_time=1.0
        )
        report = run_steady_state(
            _config(
                workload=WorkloadConfig(key_space=20), pool=pool, cycles=40,
                window=10,
            )
        )
        assert report["throughput"]["mean"] == pytest.approx(
            pool.expected_rate, rel=0.3
        )

    def test_summary_lines_render(self):
        report = run_steady_state(_config(wan=three_datacenters((2, 2, 2))))
        text = "\n".join(summary_lines(report))
        assert "sim:" in text
        assert "wan share" in text
        assert "wan:eu-west<->us-east" in text


class TestWanRun:
    def test_wan_traffic_is_attributed(self):
        report = run_steady_state(
            _config(wan=three_datacenters((4, 4, 4)), cycles=30, window=6)
        )
        traffic = report["traffic"]
        assert report["n"] == 12
        links = {row["link"] for row in traffic["links"]}
        assert links == {
            "wan:eu-west<->us-east",
            "wan:ap-south<->eu-west",
            "wan:ap-south<->us-east",
            "intra:us-east", "intra:eu-west", "intra:ap-south",
        }
        assert traffic["wan_conversations"] > 0
        assert 0.0 < traffic["wan_share"] < 1.0
        assert traffic["busiest_wan_link"] in links
        assert report["converged_after_quiesce"] is True

    def test_useful_updates_flow_on_wan_links(self):
        report = run_steady_state(
            _config(wan=three_datacenters((4, 4, 4)), cycles=30, window=6)
        )
        useful = sum(
            row["useful_updates"] for row in report["traffic"]["links"]
        )
        assert useful > 0


class TestObservability:
    def test_events_emitted_on_an_attached_bus(self):
        bus = EventBus()
        events = []
        bus.add_sink(events.append)
        run_steady_state(_config(cycles=20, window=5), bus=bus)
        kinds = [event.kind for event in events]
        assert kinds.count(EventKind.WORKLOAD_WINDOW) == 4
        assert EventKind.READ_SAMPLED in kinds
        window = next(
            event for event in events
            if event.kind is EventKind.WORKLOAD_WINDOW
        )
        assert {"t", "ops", "throughput", "residue"} <= set(window.payload)

    def test_metrics_registry_populated(self):
        registry = MetricsRegistry()
        report = run_steady_state(_config(), metrics=registry)
        counter = registry.counter(
            "repro_workload_ops_total",
            "Client operations injected",
            labels=("kind",),
        )
        assert counter.value(kind="write") == report["ops"]["writes"]
        assert counter.value(kind="read") == report["ops"]["reads"]
        assert counter.value(kind="delete") == report["ops"]["deletes"]


class TestDeletesUnderLoad:
    def test_death_certificates_propagate_under_sustained_load(self):
        """Satellite: delete_fraction under sustained load — death
        certificates must win over concurrent writes and every store
        must converge once injection stops."""
        cluster = Cluster(n=10, seed=7)
        cluster.add_protocol(
            AntiEntropyProtocol(
                config=AntiEntropyConfig(
                    mode=ExchangeMode.PUSH_PULL, synchronous=False
                ),
                strategy=FullCompare(),
            )
        )
        driver = WorkloadDriver(
            cluster,
            WorkloadConfig(
                updates_per_cycle=8.0, key_space=12, delete_fraction=0.3
            ),
            seed=7,
        )
        driver.run(50)
        assert driver.deletes > 20
        cluster.run_until(cluster.converged, max_cycles=200)
        # Every site agrees with the oracle on every key ever written:
        # same timestamp, and tombstones where the last op was a delete.
        deletion_seen = False
        for key in driver.oracle_keys():
            latest = driver._latest[key]
            reference = cluster.sites[0].store.entry(key)
            assert reference is not None
            assert reference.timestamp == latest
            for site_id in cluster.up_site_ids()[1:]:
                entry = cluster.sites[site_id].store.entry(key)
                assert entry is not None
                assert entry.timestamp == reference.timestamp
                assert entry.is_deletion == reference.is_deletion
            deletion_seen = deletion_seen or reference.is_deletion
        assert deletion_seen


class TestBuildReport:
    def test_zero_duration_yields_zero_throughput(self):
        report = build_report(
            runtime="live", unit="seconds", n=3, duration=0.0,
            ops={"total": 0, "writes": 0, "reads": 0, "deletes": 0,
                 "read_misses": 0},
            staleness={"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0,
                       "max": 0.0},
            traffic=empty_traffic_summary(),
            curves={"window": 1.0, "points": []},
            converged_after_quiesce=True,
        )
        assert report["throughput"] == {"mean": 0.0, "unit": "ops/second"}
        assert set(report) == REPORT_KEYS
