"""Workload generation and the steady-state drivers."""

import pytest

from repro.cluster.cluster import Cluster
from repro.experiments.workloads import (
    WorkloadConfig,
    WorkloadDriver,
    checksum_tau_experiment,
)
from repro.protocols.anti_entropy import AntiEntropyConfig, AntiEntropyProtocol
from repro.protocols.base import ExchangeMode


class TestWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(updates_per_cycle=-1)
        with pytest.raises(ValueError):
            WorkloadConfig(key_space=0)
        with pytest.raises(ValueError):
            WorkloadConfig(delete_fraction=1.0)
        with pytest.raises(ValueError):
            WorkloadConfig(zipf_s=-0.5)


class TestWorkloadDriver:
    def _cluster(self, n=10, seed=0):
        cluster = Cluster(n=n, seed=seed)
        cluster.add_protocol(
            AntiEntropyProtocol(
                config=AntiEntropyConfig(mode=ExchangeMode.PUSH_PULL)
            )
        )
        return cluster

    def test_injection_rate_approximates_mean(self):
        cluster = self._cluster()
        driver = WorkloadDriver(cluster, WorkloadConfig(updates_per_cycle=2.5))
        driver.run(cycles=100)
        assert driver.operations == pytest.approx(250, rel=0.15)

    def test_fractional_rate(self):
        cluster = self._cluster()
        driver = WorkloadDriver(cluster, WorkloadConfig(updates_per_cycle=0.5))
        driver.run(cycles=200)
        assert 50 <= driver.operations <= 150

    def test_keys_come_from_key_space(self):
        cluster = self._cluster()
        driver = WorkloadDriver(
            cluster, WorkloadConfig(updates_per_cycle=3.0, key_space=5)
        )
        driver.run(cycles=30)
        keys = set()
        for site in cluster.sites.values():
            keys.update(k for k, __ in site.store.visible_items())
        assert keys <= {f"key-{i}" for i in range(5)}

    def test_zipf_skew_concentrates_popularity(self):
        cluster = self._cluster(seed=3)
        driver = WorkloadDriver(
            cluster,
            WorkloadConfig(updates_per_cycle=5.0, key_space=50, zipf_s=1.5),
            seed=3,
        )
        counts = {}
        original = cluster.inject_update

        def counting(site, key, value, track=False):
            counts[key] = counts.get(key, 0) + 1
            return original(site, key, value)

        cluster.inject_update = counting
        driver.run(cycles=60)
        top = max(counts.values())
        assert top > driver.operations * 0.2  # rank-1 dominates

    def test_deletes_injected(self):
        cluster = self._cluster(seed=4)
        driver = WorkloadDriver(
            cluster,
            WorkloadConfig(updates_per_cycle=3.0, delete_fraction=0.3),
            seed=4,
        )
        driver.run(cycles=40)
        assert driver.deletes == pytest.approx(driver.operations * 0.3, rel=0.35)

    def test_workload_then_quiesce_converges(self):
        cluster = self._cluster(seed=5)
        driver = WorkloadDriver(
            cluster,
            WorkloadConfig(updates_per_cycle=2.0, key_space=20, delete_fraction=0.1),
            seed=5,
        )
        driver.run(cycles=40)
        cluster.run_until(cluster.converged, max_cycles=100)
        assert cluster.converged()

    def test_skips_injection_when_everyone_down(self):
        cluster = self._cluster()
        for site in cluster.sites.values():
            site.up = False
        driver = WorkloadDriver(cluster, WorkloadConfig(updates_per_cycle=5.0))
        assert driver.inject_one_cycle() == 0
        assert driver.operations == 0


class TestChecksumTauExperiment:
    def test_sweep_shape(self):
        results = checksum_tau_experiment(
            n=20, tau_values=(2.0, 10.0), update_rate=2.0, cycles=30
        )
        small, right = results
        assert small.full_compare_rate > right.full_compare_rate
        assert right.checksum_success_rate > 0.8
        assert all(r.converged_after_quiesce for r in results)
